"""Registered chunk-delivery kernels over raw CSR adjacency.

:class:`DeliveryKernels` is the window-execution engine of
:class:`~repro.radio.RadioNetwork` factored out onto bare
``(indptr, indices)`` arrays, so the same density-adaptive routing and
the same exact integer arithmetic can run against *any* CSR — the full
adjacency or a residual sub-graph built by
:meth:`~repro.graphs.context.GraphContext.induced_csr` when a
protocol's live set has collapsed (:mod:`repro.engine.residual`).

Degree-dependent routing state (max/min degree for the auto router's
output-size pre-emption, the dense packing bound) is **recomputed from
the CSR handed in**, never inherited from a parent graph: a residual
sub-graph's degrees are what its routing decisions must use (inherited
extremes would over-route shrunken graphs dense and can violate the
packing bound's premise in the other direction).

Three optional compiled tiers register here:

* ``"numba"`` — an ``@njit`` CSR scatter kernel (per-row transmitter
  walk, integer collision counts, last-writer sender slots). Every
  quantity is an int64, so it is **exact**: bit-identical to the numpy
  kernels, validated by :class:`~repro.engine.validate.ValidatingRunner`
  and the differential-fuzz harness like any other path.
* ``"cupy"`` — the complex sparse product on the GPU. Same
  small-integer-in-float64 exactness argument as the CPU spmm
  componentwise, so it sits in the same exactness tier wherever the
  device's flush-to-zero settings leave exact integer adds alone
  (DESIGN.md §7 documents the tiers).
* ``"pipeline"`` (ISSUE 9) — the fused coin+fault+delivery chunk pass.
  Its compiled leg (:func:`pipeline_mask_kernel`, gated on numba)
  draws PCG64 coins inline per row from
  :func:`~repro.engine.pcg.row_base_states` launch states — the exact
  draw-for-draw arithmetic of ``rng.random((k, n))`` — and compares
  against separable ``row_prob * col_prob`` thresholds in the same
  loop, never materializing the float coin block. The pure-NumPy
  blocked fallback (what ``delivery="auto"`` runs by default, see
  :meth:`~repro.engine.runner.WindowedRunner._pipeline_masks`) keeps
  the fused *structure* — in-place fault transforms, COO reception
  delivery via :meth:`DeliveryKernels.execute_coo`, no ``(k, n)``
  hear slab — with coins still drawn as one block. Forcing
  ``delivery="pipeline"`` without numba refuses by name; the numpy
  fused pass is an ``"auto"`` behavior, not an installable mode.

No optional dependency is imported until probed; probing is cached.
Requesting an absent backend raises the uniform
:class:`~repro.radio.errors.ProtocolError` naming the installed
alternatives — silent fallback happens only under ``delivery="auto"``
(:func:`require_delivery_mode`, satellite of ISSUE 7).
"""

from __future__ import annotations

import contextlib

import numpy as np
import scipy.sparse as sp

from ..radio.errors import ProtocolError
from ..radio.network import (
    DELIVERY_MODES,
    DENSE_ROW_DENSITY,
    DENSE_WINDOW_CELL_BYTES,
    GATHER_WINDOW_WIDTH,
    NO_SENDER,
    SPARSE_COO_ENTRY_BYTES,
    SPARSE_PREEMPT_FACTOR,
)

#: Delivery modes that require an optional compiled dependency.
COMPILED_DELIVERY_MODES = ("numba", "cupy", "pipeline")

#: Every delivery mode the policy layer accepts (availability is a
#: separate question — see :func:`require_delivery_mode`).
ALL_DELIVERY_MODES = DELIVERY_MODES + COMPILED_DELIVERY_MODES

#: The package each compiled mode actually needs (the pipeline tier's
#: compiled leg is a numba kernel, not a package of its own).
_MODE_PACKAGE = {"numba": "numba", "cupy": "cupy", "pipeline": "numba"}

_probe_cache: dict[str, bool] = {}
_numba_kernel = None
_pipeline_kernel = None
_pipeline_active = True


def probe_numba() -> bool:
    """Whether the numba JIT backend is importable (cached)."""
    if "numba" not in _probe_cache:
        try:  # pragma: no cover - depends on the installed environment
            import numba  # noqa: F401

            _probe_cache["numba"] = True
        except Exception:
            _probe_cache["numba"] = False
    return _probe_cache["numba"]


def probe_cupy() -> bool:
    """Whether the cupy GPU backend is importable *and has a device*."""
    if "cupy" not in _probe_cache:
        try:  # pragma: no cover - depends on the installed environment
            import cupy

            cupy.cuda.runtime.getDeviceCount()
            _probe_cache["cupy"] = True
        except Exception:
            _probe_cache["cupy"] = False
    return _probe_cache["cupy"]


_PROBES = {
    "numba": probe_numba,
    "cupy": probe_cupy,
    "pipeline": probe_numba,
}


def pipeline_enabled() -> bool:
    """Whether ``delivery="auto"`` may take the fused pipeline pass."""
    return _pipeline_active


@contextlib.contextmanager
def pipeline_disabled():
    """Force the unfused (pre-ISSUE-9) chunk paths under ``"auto"``.

    The benchmarks' baseline leg and the pipeline equivalence tests
    use this to pin the fused pass against the classic slab path on
    one rng stream.
    """
    global _pipeline_active
    previous = _pipeline_active
    _pipeline_active = False
    try:
        yield
    finally:
        _pipeline_active = previous


def available_delivery_modes() -> tuple[str, ...]:
    """The delivery modes this process can actually execute.

    Always the three numpy modes (``"auto"``, ``"sparse"``,
    ``"dense"``); the compiled modes appear exactly when their
    dependency probes as importable.
    """
    return DELIVERY_MODES + tuple(
        mode for mode in COMPILED_DELIVERY_MODES if _PROBES[mode]()
    )


def require_delivery_mode(mode: str) -> None:
    """Refuse unknown modes and absent compiled backends, uniformly.

    An explicit request for ``"numba"``/``"cupy"`` without the
    dependency is an error naming the installed alternatives — never a
    silent fallback. Only ``delivery="auto"`` is allowed to degrade
    (that is what auto *means*).
    """
    if mode not in ALL_DELIVERY_MODES:
        raise ProtocolError(
            f"unknown delivery mode: {mode!r} "
            f"(expected one of {ALL_DELIVERY_MODES})"
        )
    if mode in COMPILED_DELIVERY_MODES and not _PROBES[mode]():
        package = _MODE_PACKAGE[mode]
        raise ProtocolError(
            f"delivery mode {mode!r} requires the {package!r} package, "
            f"which is not installed (or has no usable device); "
            f"installed delivery modes: {available_delivery_modes()}"
        )


def compiled_kernel_name(mode: str) -> str:
    """The chunk-kernel family a resolved ``delivery`` mode will use
    for its (popcount-)sparse rows — recorded in ``RunReport``
    provenance so a run names the code that produced it."""
    if mode == "pipeline":
        return "pipeline-numba"
    if mode == "numba" or (mode == "auto" and probe_numba()):
        return "csr-numba"
    if mode == "cupy":
        return "spmm-cupy"
    return "numpy"


def _get_numba_kernel():  # pragma: no cover - needs numba installed
    """Build (once) the ``@njit`` CSR window kernel.

    Row-parallel over window steps: each step walks its transmitters'
    CSR neighbor lists, bumping an int64 collision counter and a
    last-writer sender slot per listener. A listener with exactly one
    transmitting neighbor that is not itself transmitting hears that
    sender. Integer arithmetic throughout — no floats to round, so the
    result is bit-identical to the numpy kernels by construction.
    """
    global _numba_kernel
    if _numba_kernel is None:
        import numba

        @numba.njit(cache=True, parallel=True)
        def _csr_window(masks, indptr, indices, hear_from):
            w, n = masks.shape
            receptions = 0
            for t in numba.prange(w):
                counts = np.zeros(n, dtype=np.int64)
                sender = np.zeros(n, dtype=np.int64)
                for u in range(n):
                    if masks[t, u]:
                        for j in range(indptr[u], indptr[u + 1]):
                            v = indices[j]
                            counts[v] += 1
                            sender[v] = u
                heard = 0
                for v in range(n):
                    if counts[v] == 1 and not masks[t, v]:
                        hear_from[t, v] = sender[v]
                        heard += 1
                receptions += heard
            return receptions

        _numba_kernel = _csr_window
    return _numba_kernel


def _fused_mask_row(s_hi, s_lo, i_hi, i_lo, m_hi, m_lo, r, cp, out_row):
    """One row of the fused coin+threshold pass, scalar PCG64 steps.

    ``(s_hi, s_lo)`` is the 128-bit LCG state at the row start (from
    :func:`~repro.engine.pcg.row_base_states`); each column advances
    the state once (schoolbook 64x64 limb multiply, exactly
    :func:`~repro.engine.pcg._mulhi64`'s arithmetic scalarized),
    applies numpy's XSL-RR output and 53-bit double conversion, and
    stores ``coin < r * cp[v]`` — the separable threshold the pipeline
    plan forms guarantee matches the emitter's vectorized mask math
    bit-for-bit. Written in numba-jittable scalar style but kept plain
    Python at module level so the arithmetic is pinned by tests without
    the dependency (run under ``np.errstate(over="ignore")``: uint64
    wraparound is the point).
    """
    mask32 = np.uint64(0xFFFFFFFF)
    c32 = np.uint64(32)
    c58 = np.uint64(58)
    c64 = np.uint64(64)
    c63 = np.uint64(63)
    c11 = np.uint64(11)
    one = np.uint64(1)
    inv_2_53 = 2.0**-53
    n = out_row.shape[0]
    for v in range(n):
        a0 = s_lo & mask32
        a1 = s_lo >> c32
        b0 = m_lo & mask32
        b1 = m_lo >> c32
        p00 = a0 * b0
        p01 = a0 * b1
        p10 = a1 * b0
        carry = ((p00 >> c32) + (p01 & mask32) + (p10 & mask32)) >> c32
        mul_hi = a1 * b1 + (p01 >> c32) + (p10 >> c32) + carry
        lo = s_lo * m_lo
        hi = mul_hi + s_hi * m_lo + s_lo * m_hi
        lo2 = lo + i_lo
        if lo2 < lo:
            hi = hi + one
        s_hi = hi + i_hi
        s_lo = lo2
        rot = s_hi >> c58
        x = s_hi ^ s_lo
        word = (x >> rot) | (x << ((c64 - rot) & c63))
        coin = np.float64(word >> c11) * inv_2_53
        out_row[v] = coin < r * cp[v]


def _get_pipeline_kernel():  # pragma: no cover - needs numba
    """Build (once) the compiled fused coin+mask pipeline kernel.

    Row-parallel: each window row starts from its jump-ahead launch
    state and runs :func:`_fused_mask_row` compiled — rows are
    independent PCG64 subsequences, so ``prange`` introduces no
    ordering hazard and the output is bit-identical to the sequential
    block draw.
    """
    global _pipeline_kernel
    if _pipeline_kernel is None:
        import numba

        row = numba.njit(cache=True)(_fused_mask_row)

        @numba.njit(cache=True, parallel=True)
        def _fused_masks(s_hi, s_lo, i_hi, i_lo, m_hi, m_lo, rp, cp, out):
            for t in numba.prange(out.shape[0]):
                row(s_hi[t], s_lo[t], i_hi, i_lo, m_hi, m_lo, rp[t], cp, out[t])

        _pipeline_kernel = _fused_masks
    return _pipeline_kernel


def pipeline_mask_kernel():
    """The compiled fused mask kernel, or ``None`` without numba.

    The runner's pipeline pass calls this per chunk; ``None`` selects
    the pure-NumPy blocked fallback (block coin draw + per-row
    threshold compare), which shares every downstream fused stage.
    """
    if not probe_numba():
        return None
    return _get_pipeline_kernel()  # pragma: no cover - needs numba


class DeliveryKernels:
    """Window-delivery kernels bound to one CSR adjacency.

    Parameters
    ----------
    indptr, indices:
        The CSR row pointers and column indices of an undirected
        adjacency over ``n`` nodes (symmetric, no self-loops) — e.g.
        ``GraphContext.csr``'s arrays, or the output of
        :meth:`~repro.graphs.context.GraphContext.induced_csr`.
    n:
        Node count; ``indptr`` has ``n + 1`` entries.

    All routing constants and kernel arithmetic mirror
    :class:`~repro.radio.RadioNetwork` exactly (same popcount
    thresholds, same output-size pre-emption, same packed-modulus dense
    product), so executing a mask block here is bit-identical to
    executing it there — the property the residual path's equivalence
    tests pin.
    """

    def __init__(
        self, indptr: np.ndarray, indices: np.ndarray, n: int
    ) -> None:
        self.n = int(n)
        self.indptr = np.ascontiguousarray(indptr)
        self.indices = np.ascontiguousarray(indices)
        # Satellite fix (ISSUE 7): degree extremes are *recomputed* from
        # this CSR. Residual sub-graphs routed on a parent's cached
        # extremes would mis-route (stale max_degree over-triggers the
        # spmm pre-emption; a stale packing bound is unsound upward).
        self.degrees = np.diff(self.indptr).astype(np.int64)
        self.max_degree = int(self.degrees.max()) if self.n else 0
        self.min_degree = int(self.degrees.min()) if self.n else 0
        self._ids1 = np.arange(self.n, dtype=np.float64) + 1.0
        self.dense_pack_ok = (
            self.max_degree * (1.0 + self.n * (self.n + 1.0)) < 2.0**53
        )
        self._adj: sp.csr_array | None = None
        self._adj_complex: sp.csr_array | None = None
        self._cupy_adj = None
        # Scratch for the packed-modulus dense COO kernel: the value
        # vector is a pure function of n, the rhs slab is reused
        # across chunks (contents are fully rewritten every call).
        self._packed_vals: np.ndarray | None = None
        self._dense_rhs: np.ndarray | None = None

    # -- lazy matrix forms --------------------------------------------

    def _matrix(self) -> sp.csr_array:
        if self._adj is None:
            data = np.ones(self.indices.shape[0], dtype=np.float64)
            self._adj = sp.csr_array(
                (data, self.indices, self.indptr), shape=(self.n, self.n)
            )
        return self._adj

    def _complex_matrix(self) -> sp.csr_array:
        if self._adj_complex is None:
            self._adj_complex = self._matrix().astype(np.complex128)
        return self._adj_complex

    # -- routing ------------------------------------------------------

    def dense_rows(self, masks: np.ndarray) -> np.ndarray:
        """Rows the auto router sends dense — popcount density plus the
        output-size pre-emption, both on *this* CSR's degrees (see
        :meth:`~repro.radio.RadioNetwork.dense_window_rows` for the
        full rationale; the arithmetic here is the same)."""
        row_counts = np.count_nonzero(masks, axis=1)
        dense = row_counts >= DENSE_ROW_DENSITY * max(1, self.n)
        sparse = ~dense
        n_sparse = int(sparse.sum())
        if n_sparse:
            sparse_tx = int(row_counts[sparse].sum())
            flip_entries = (
                SPARSE_PREEMPT_FACTOR
                * n_sparse
                * self.n
                * (DENSE_WINDOW_CELL_BYTES / SPARSE_COO_ENTRY_BYTES)
            )
            if sparse_tx * self.max_degree >= flip_entries:
                if sparse_tx * self.min_degree >= flip_entries:
                    degree_sum = float(flip_entries)
                else:
                    sub = (
                        masks
                        if n_sparse == masks.shape[0]
                        else masks[sparse]
                    )
                    degree_sum = float(
                        self.degrees[np.nonzero(sub)[1]].sum()
                    )
                if degree_sum >= flip_entries:
                    dense = np.ones(masks.shape[0], dtype=bool)
        return dense

    # -- numpy kernels (mirrors of the RadioNetwork window kernels) ---

    def _gather(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        starts = self.indptr[tx_node].astype(np.int64)
        lens = self.indptr[tx_node + 1].astype(np.int64) - starts
        total = int(lens.sum())
        if total == 0:
            return 0
        offsets = np.repeat(np.cumsum(lens) - lens - starts, lens)
        neighbors = self.indices[
            np.arange(total, dtype=np.int64) - offsets
        ]
        flat = np.repeat(tx_step, lens) * self.n + neighbors
        counts = np.bincount(flat, minlength=w * self.n).reshape(
            w, self.n
        )
        idsum1 = np.bincount(
            flat,
            weights=np.repeat(self._ids1[tx_node], lens),
            minlength=w * self.n,
        ).reshape(w, self.n)
        clean = (counts == 1) & ~masks
        hear_from[clean] = np.rint(idsum1[clean]).astype(np.int64) - 1
        return int(clean.sum())

    def _spmm(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        if not tx_node.size:
            return 0
        data = np.empty(tx_node.size, dtype=np.complex128)
        data.real = 1.0
        data.imag = self._ids1[tx_node]
        rhs = sp.csr_array(
            (data, (tx_node, tx_step)), shape=(self.n, w)
        )
        out = (self._complex_matrix() @ rhs).tocoo()
        node, step = out.coords
        counts = out.data.real
        clean = (counts == 1.0) & ~masks[step, node]
        sender = np.rint(out.data.imag[clean]).astype(np.int64) - 1
        hear_from[step[clean], node[clean]] = sender
        return int(clean.sum())

    def _dense(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        masks_t = masks.T
        if self.dense_pack_ok:
            modulus = float(self.n + 1)
            vals = 1.0 + self._ids1 * modulus
            rhs = np.where(masks_t, vals[:, None], 0.0)
            out = self._matrix() @ rhs
            counts = np.remainder(out, modulus)
            heard = (~masks_t) & (counts == 1.0)
            node, step = np.nonzero(heard)
            idsum1 = (out[node, step] - 1.0) / modulus
        else:  # pragma: no cover - needs a graph beyond the 2^53 bound
            rhs = np.where(
                masks_t, (1.0 + 1j * self._ids1)[:, None], 0.0
            )
            out = self._complex_matrix() @ rhs
            heard = (~masks_t) & (out.real == 1.0)
            node, step = np.nonzero(heard)
            idsum1 = out.imag[node, step]
        hear_from[step, node] = np.rint(idsum1).astype(np.int64) - 1
        return int(node.size)

    def _sparse(self, masks: np.ndarray, hear_from: np.ndarray) -> int:
        if masks.shape[0] <= GATHER_WINDOW_WIDTH:
            return self._gather(masks, hear_from)
        return self._spmm(masks, hear_from)

    # -- COO kernels (the fused pipeline's reception form) ------------
    #
    # Same routing, same exact arithmetic as the slab kernels above,
    # but clean receptions come back as ``(step, node, sender)`` int64
    # triples instead of being scattered into a ``(w, n)`` hear slab —
    # receptions are sparse, so the pipeline pass skips both the slab
    # allocation and the consumer's full-width re-scan. Triple order is
    # unspecified; the ``consume_coo`` folds are order-independent.
    # The transmitter scan runs ONCE per block (``_transmitters``) and
    # threads through routing and kernels — the slab path's layered
    # ``any`` + popcount + per-kernel ``nonzero`` re-scans were a
    # visible slice of fused wall time at n = 10^5.

    @staticmethod
    def _empty_coo() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty

    def _transmitters(
        self, masks: np.ndarray, cols: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """The block's ``(tx_step, tx_node)`` transmitter pairs.

        ``cols`` — sorted global column indices outside which the
        caller guarantees every row is False (the fused pipeline's
        active set; fault transforms only ever *clear* bits, so the
        guarantee survives them) — restricts the scan to a compact
        column gather when that is meaningfully narrower than the full
        width. Pair order matches the full-width ``np.nonzero``:
        row-major, columns ascending within a row.
        """
        if cols is not None and 2 * cols.size <= self.n:
            tx_step, tx_local = np.nonzero(masks[:, cols])
            return tx_step, cols[tx_local]
        return np.nonzero(masks)

    def _dense_rows_tx(
        self, w: int, tx_step: np.ndarray, tx_node: np.ndarray
    ) -> np.ndarray:
        """:meth:`dense_rows` recomputed from a transmitter list —
        identical routing decisions, no re-scan of the mask block."""
        row_counts = np.bincount(tx_step, minlength=w)
        dense = row_counts >= DENSE_ROW_DENSITY * max(1, self.n)
        sparse = ~dense
        n_sparse = int(sparse.sum())
        if n_sparse:
            sparse_tx = int(row_counts[sparse].sum())
            flip_entries = (
                SPARSE_PREEMPT_FACTOR
                * n_sparse
                * self.n
                * (DENSE_WINDOW_CELL_BYTES / SPARSE_COO_ENTRY_BYTES)
            )
            if sparse_tx * self.max_degree >= flip_entries:
                if sparse_tx * self.min_degree >= flip_entries:
                    degree_sum = float(flip_entries)
                else:
                    nodes = (
                        tx_node
                        if n_sparse == w
                        else tx_node[sparse[tx_step]]
                    )
                    degree_sum = float(self.degrees[nodes].sum())
                if degree_sum >= flip_entries:
                    dense = np.ones(w, dtype=bool)
        return dense

    def _gather_coo(
        self,
        masks: np.ndarray,
        tx: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        tx_step, tx_node = (
            tx if tx is not None else np.nonzero(masks)
        )
        starts = self.indptr[tx_node].astype(np.int64)
        lens = self.indptr[tx_node + 1].astype(np.int64) - starts
        total = int(lens.sum())
        if total == 0:
            return self._empty_coo()
        offsets = np.repeat(np.cumsum(lens) - lens - starts, lens)
        neighbors = self.indices[
            np.arange(total, dtype=np.int64) - offsets
        ]
        flat = np.repeat(tx_step, lens) * self.n + neighbors
        # Clean ⟺ the (step, listener) key occurs exactly once, found
        # by sorting instead of the slab kernel's w*n bincount.
        order = np.argsort(flat, kind="stable")
        flat = flat[order]
        boundary = np.empty(flat.size, dtype=bool)
        boundary[0] = True
        np.not_equal(flat[1:], flat[:-1], out=boundary[1:])
        single = boundary.copy()
        single[:-1] &= boundary[1:]
        keys = flat[single]
        senders = np.repeat(tx_node, lens)[order[single]]
        step = keys // self.n
        node = keys - step * self.n
        keep = ~masks[step, node]
        return step[keep], node[keep], senders[keep]

    def _spmm_coo(
        self,
        masks: np.ndarray,
        tx: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        w = masks.shape[0]
        tx_step, tx_node = (
            tx if tx is not None else np.nonzero(masks)
        )
        if not tx_node.size:
            return self._empty_coo()
        if self.dense_pack_ok:
            # The dense kernel's packed-modulus trick on the sparse
            # product: one float64 spmm instead of a complex128 one
            # (half the data traffic, a quarter of the multiplies).
            # Every per-listener sum is ``count + modulus * idsum1``
            # with exact-integer float terms, and ``dense_pack_ok`` is
            # precisely the bound keeping the worst such sum below
            # 2^53 — same remainder/unpack arithmetic, same exactness
            # argument, as ``_dense``.
            #
            # The product runs transposed — ``rhs_T @ A`` with the
            # adjacency's symmetry — because the transmitter pairs
            # arrive row-major (step ascending, node ascending within
            # a step), which IS the canonical CSR layout of the
            # ``(w, n)`` transmitter matrix: three array wraps replace
            # the COO sort-and-convert of the ``(n, w)`` orientation.
            modulus = float(self.n + 1)
            indptr = np.zeros(w + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(tx_step, minlength=w), out=indptr[1:]
            )
            rhs_t = sp.csr_array(
                (1.0 + self._ids1[tx_node] * modulus, tx_node, indptr),
                shape=(w, self.n),
            )
            out = (rhs_t @ self._matrix()).tocoo()
            step, node = out.coords
            counts = np.remainder(out.data, modulus)
            clean = (counts == 1.0) & ~masks[step, node]
            sender = (
                np.rint((out.data[clean] - 1.0) / modulus).astype(
                    np.int64
                )
                - 1
            )
        else:  # pragma: no cover - needs a graph beyond the 2^53 bound
            data = np.empty(tx_node.size, dtype=np.complex128)
            data.real = 1.0
            data.imag = self._ids1[tx_node]
            rhs = sp.csr_array(
                (data, (tx_node, tx_step)), shape=(self.n, w)
            )
            out = (self._complex_matrix() @ rhs).tocoo()
            node, step = out.coords
            counts = out.data.real
            clean = (counts == 1.0) & ~masks[step, node]
            sender = np.rint(out.data.imag[clean]).astype(np.int64) - 1
        return (
            step[clean].astype(np.int64, copy=False),
            node[clean].astype(np.int64, copy=False),
            sender,
        )

    def _dense_coo(
        self, masks: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        masks_t = masks.T
        if self.dense_pack_ok:
            modulus = float(self.n + 1)
            vals = self._packed_vals
            if vals is None:
                vals = 1.0 + self._ids1 * modulus
                self._packed_vals = vals
            view = self._dense_rhs
            if view is None or view.shape[1] != masks.shape[0]:
                # Exact width: a sliced column view would lose C
                # contiguity and the spmm would copy it right back.
                view = np.empty(
                    (self.n, masks.shape[0]), dtype=np.float64
                )
                self._dense_rhs = view
            np.multiply(masks_t, vals[:, None], out=view)
            out = self._matrix() @ view
            # Peak trimming: the remainder lands back in the rhs slab.
            counts = np.remainder(out, modulus, out=view)
            heard = counts == 1.0
            heard &= ~masks_t
            node, step = np.nonzero(heard)
            idsum1 = (out[node, step] - 1.0) / modulus
        else:  # pragma: no cover - needs a graph beyond the 2^53 bound
            rhs = np.where(
                masks_t, (1.0 + 1j * self._ids1)[:, None], 0.0
            )
            out = self._complex_matrix() @ rhs
            heard = (~masks_t) & (out.real == 1.0)
            node, step = np.nonzero(heard)
            idsum1 = out.imag[node, step]
        sender = np.rint(idsum1).astype(np.int64) - 1
        return step, node, sender

    def _sparse_coo(
        self,
        masks: np.ndarray,
        tx: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if masks.shape[0] <= GATHER_WINDOW_WIDTH:
            return self._gather_coo(masks, tx)
        return self._spmm_coo(masks, tx)

    # -- compiled kernels ---------------------------------------------

    def _numba(self, masks, hear_from):  # pragma: no cover - needs numba
        kernel = _get_numba_kernel()
        return int(
            kernel(
                np.ascontiguousarray(masks),
                self.indptr,
                self.indices,
                hear_from,
            )
        )

    def _numba_coo(self, masks):  # pragma: no cover - needs numba
        """COO form of the compiled CSR walk: run the slab kernel,
        then lift its (sparse) receptions out — still far cheaper than
        the uncompiled products, and zero new compiled surface."""
        hear_from = np.full(masks.shape, NO_SENDER, dtype=np.int64)
        self._numba(masks, hear_from)
        step, node = np.nonzero(hear_from != NO_SENDER)
        return step, node, hear_from[step, node]

    def _cupy(self, masks, hear_from):  # pragma: no cover - needs cupy
        import cupy
        import cupyx.scipy.sparse as cpsp

        adj = self._cupy_adj
        if adj is None:
            adj = cpsp.csr_matrix(
                sp.csr_matrix(self._complex_matrix())
            )
            self._cupy_adj = adj
        w = masks.shape[0]
        tx_step, tx_node = np.nonzero(masks)
        if not tx_node.size:
            return 0
        data = np.empty(tx_node.size, dtype=np.complex128)
        data.real = 1.0
        data.imag = self._ids1[tx_node]
        rhs = cpsp.csr_matrix(
            sp.csr_matrix(
                (data, (tx_node, tx_step)), shape=(self.n, w)
            )
        )
        out = (adj @ rhs).tocoo()
        node = cupy.asnumpy(out.row)
        step = cupy.asnumpy(out.col)
        vals = cupy.asnumpy(out.data)
        clean = (vals.real == 1.0) & ~masks[step, node]
        sender = np.rint(vals.imag[clean]).astype(np.int64) - 1
        hear_from[step[clean], node[clean]] = sender
        return int(clean.sum())

    # -- the routed entry point ---------------------------------------

    def execute(
        self,
        masks: np.ndarray,
        hear_from: np.ndarray,
        mode: str,
        counters: dict[str, int] | None = None,
    ) -> int:
        """Execute one ``(w, n)`` mask block into ``hear_from``.

        Same contract as
        :meth:`~repro.radio.RadioNetwork._execute_window_rows`: write
        clean receptions, return their count, no accounting. ``mode``
        accepts every member of :data:`ALL_DELIVERY_MODES`; ``"auto"``
        routes per row — dense rows to the packed matmul, sparse rows
        to the compiled CSR kernel when numba is installed, the
        gather/spmm pair otherwise (``"pipeline"`` falls through to the
        same auto routing here: blocks that are not pipeline-capable —
        decision steps, plans without a separable form — still execute
        under a forced pipeline policy). ``counters`` (when given) is
        bumped per kernel leg with the number of rows it executed,
        feeding ``RunReport`` delivery provenance.
        """

        def bump(name: str, rows: int) -> None:
            if counters is not None:
                counters[name] = counters.get(name, 0) + rows

        w = masks.shape[0]
        if not masks.any():
            bump("skip-empty", w)
            return 0
        if mode == "dense":
            bump("dense", w)
            return self._dense(masks, hear_from)
        if mode == "sparse":
            bump(
                "gather" if w <= GATHER_WINDOW_WIDTH else "spmm", w
            )
            return self._sparse(masks, hear_from)
        if mode == "numba":  # pragma: no cover - needs numba
            bump("csr-numba", w)
            return self._numba(masks, hear_from)
        if mode == "cupy":  # pragma: no cover - needs cupy
            bump("spmm-cupy", w)
            return self._cupy(masks, hear_from)
        # auto: per-row density routing, compiled kernel for the
        # sparse side when available.
        dense_rows = self.dense_rows(masks)
        if probe_numba():  # pragma: no cover - needs numba
            sparse_exec = self._numba
            sparse_name = "csr-numba"
        else:
            sparse_exec = self._sparse
            sparse_name = None
        if not dense_rows.any():
            if sparse_name is None:
                bump(
                    "gather" if w <= GATHER_WINDOW_WIDTH else "spmm", w
                )
            else:  # pragma: no cover - needs numba
                bump(sparse_name, w)
            return sparse_exec(masks, hear_from)
        if dense_rows.all():
            bump("dense", w)
            return self._dense(masks, hear_from)
        receptions = 0
        for rows, execute, name in (
            (dense_rows, self._dense, "dense"),
            (~dense_rows, sparse_exec, sparse_name or "sparse-mixed"),
        ):
            idx = np.nonzero(rows)[0]
            sub = np.full(
                (idx.size, self.n), NO_SENDER, dtype=np.int64
            )
            bump(name, idx.size)
            receptions += execute(masks[idx], sub)
            hear_from[idx] = sub
        return receptions

    def execute_coo(
        self,
        masks: np.ndarray,
        mode: str,
        counters: dict[str, int] | None = None,
        cols: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Execute one ``(w, n)`` mask block to a reception triple.

        The pipeline pass's delivery stage: same per-row routing and
        the same exact kernels as :meth:`execute`, returning clean
        receptions as ``(step, node, sender)`` int64 arrays (arbitrary
        order) instead of scattering a hear slab. ``mode`` ``"auto"``
        and ``"pipeline"`` route per row (the compiled CSR walk serves
        the sparse side when numba is installed); ``"sparse"`` and
        ``"dense"`` force those kernels. ``cols`` (optional, sorted
        global indices) promises every mask column outside it is
        False, letting the single up-front transmitter scan
        (:meth:`_transmitters`) run compact. Counter names carry a
        ``coo-`` prefix so ``kernel_use`` provenance distinguishes the
        fused tier from slab execution.
        """

        def bump(name: str, rows: int) -> None:
            if counters is not None:
                counters[name] = counters.get(name, 0) + rows

        w = masks.shape[0]
        if w == 0:
            return self._empty_coo()
        tx = self._transmitters(masks, cols)
        if not tx[0].size:
            bump("skip-empty", w)
            return self._empty_coo()
        if mode == "dense":
            bump("coo-dense", w)
            return self._dense_coo(masks)
        if mode == "sparse":
            bump(
                "coo-gather" if w <= GATHER_WINDOW_WIDTH else "coo-spmm",
                w,
            )
            return self._sparse_coo(masks, tx)
        dense_rows = self._dense_rows_tx(w, tx[0], tx[1])
        if probe_numba():  # pragma: no cover - needs numba
            numba_sparse = True
            sparse_name = "coo-csr-numba"
        else:
            numba_sparse = False
            sparse_name = None
        if not dense_rows.any():
            if sparse_name is None:
                bump(
                    "coo-gather"
                    if w <= GATHER_WINDOW_WIDTH
                    else "coo-spmm",
                    w,
                )
                return self._sparse_coo(masks, tx)
            bump(sparse_name, w)  # pragma: no cover - needs numba
            return self._numba_coo(masks)
        if dense_rows.all():
            bump("coo-dense", w)
            return self._dense_coo(masks)
        tx_step, tx_node = tx
        parts = []
        for rows, name in (
            (dense_rows, "coo-dense"),
            (~dense_rows, sparse_name or "coo-sparse-mixed"),
        ):
            idx = np.nonzero(rows)[0]
            bump(name, idx.size)
            if rows is dense_rows:
                step, node, sender = self._dense_coo(masks[idx])
            elif numba_sparse:  # pragma: no cover - needs numba
                step, node, sender = self._numba_coo(masks[idx])
            else:
                # Re-key the precomputed transmitters onto the
                # sub-block's row numbering instead of re-scanning.
                sel = rows[tx_step]
                renum = np.cumsum(rows) - 1
                step, node, sender = self._sparse_coo(
                    masks[idx],
                    (renum[tx_step[sel]], tx_node[sel]),
                )
            parts.append((idx[step], node, sender))
        return (
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
            np.concatenate([p[2] for p in parts]),
        )


__all__ = [
    "ALL_DELIVERY_MODES",
    "COMPILED_DELIVERY_MODES",
    "DeliveryKernels",
    "available_delivery_modes",
    "compiled_kernel_name",
    "pipeline_disabled",
    "pipeline_enabled",
    "pipeline_mask_kernel",
    "probe_cupy",
    "probe_numba",
    "require_delivery_mode",
]
