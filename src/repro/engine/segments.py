"""The ``ProtocolSchedule`` intermediate representation.

A *schedule emitter* is a generator that describes a packet-level
protocol as a stream of segments instead of imperative ``deliver``
calls::

    def my_schedule(network, rng):
        hear = yield DecisionStep(mask)          # one adaptive step
        window = yield ObliviousWindow(masks)    # a batch of fixed steps
        ...
        return result                            # via StopIteration

The generator receives, through ``send``, exactly what the network
delivered for the segment it yielded: a length-``n`` ``hear_from``
vector for a :class:`DecisionStep`, a ``(w, n)`` matrix for an
:class:`ObliviousWindow`, ``None`` for a :class:`TracePhase`. Emitters
never touch the network themselves — execution strategy (batched sparse
products vs. fused single steps) is entirely the runner's business,
which is what lets one protocol description run bit-identically on
either path.

The obliviousness contract
--------------------------
Yielding an :class:`ObliviousWindow` is a *promise*: none of the
window's masks depends on anything heard inside the window. Every mask
may (and usually does) depend on receptions from segments already
completed, and on randomness drawn while building the window. Emitters
that draw coins for a window must draw them in the same order the
step-wise reference implementation draws them (numpy's row-major
``rng.random((w, n))`` equals ``w`` consecutive ``rng.random(n)``
calls), which is what keeps engine and reference runs on one seed
bit-identical.

Plan/commit form
----------------
The generator form above conflates two distinct events: *folding* the
receptions of the segment just executed (``send`` delivers them) and
*planning* the next segment (the generator body computes it before the
next ``yield``). A single-stream runner never notices, but a combinator
that interleaves two protocols' windows — :func:`repro.engine.mux
.multiplex` — needs to see both streams' upcoming masks while earlier
receptions are still in flight. :class:`SegmentProtocol` is the split
form: ``plan(rng)`` produces the next segment, ``commit(reply)`` folds
its delivery result, and the two may be separated by other streams'
radio steps. The causal contract mirrors the step-wise drivers: a
runner calls ``plan`` only when every previously planned row has been
executed and every completed segment committed, so a source observes
exactly the world state the reference loop's ``transmit_mask`` would.
:class:`ScheduleSegmentAdapter` lifts the generator form onto this
interface (with the documented caveat that a generator can only fold
and plan in one motion, so its fold runs at the *next* ``plan`` call).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Callable, Generator, Union

import numpy as np

from ..radio.errors import ProtocolError
from ..radio.network import TransmitPlan

#: Cap on the number of boolean coin-matrix entries an emitter should
#: materialize per window: windows larger than this are chunked. Chunked
#: ``rng.random`` draws are stream-identical to one big draw, so the
#: chunk size is a memory knob, never a semantics knob.
COIN_BUDGET = 1 << 22


def coin_chunk(n: int, budget: int = COIN_BUDGET) -> int:
    """Window rows to draw per chunk for an ``n``-node coin matrix."""
    return max(1, budget // max(1, n))


@dataclasses.dataclass
class ObliviousWindow:
    """A block of radio steps with masks fixed before the block starts.

    ``masks`` has shape ``(w, n)``; row ``t`` is the transmit mask of
    window step ``t``. The runner answers with the ``(w, n)``
    ``hear_from`` matrix of
    :meth:`repro.radio.network.RadioNetwork.deliver_window`.
    """

    masks: np.ndarray


@dataclasses.dataclass
class DecisionStep:
    """A single radio step whose mask may depend on prior receptions.

    The runner answers with the length-``n`` ``hear_from`` vector of
    :meth:`repro.radio.network.RadioNetwork.deliver`.
    """

    mask: np.ndarray


@dataclasses.dataclass
class PlanSection:
    """One phase-labeled span of a fused :class:`StreamedWindow`.

    A fused plan concatenates what used to be several back-to-back
    streamed windows (the two Decay blocks of a Radio MIS round) into
    one :class:`~repro.radio.network.TransmitPlan`, so chunk dispatch,
    fault masking, and density routing run once per round. Sections
    keep the pieces' identities: ``width`` rows of the plan, an
    optional trace ``phase`` the runner enters when the section starts,
    and the section's own fold callbacks.

    ``consume(hear_chunk)`` folds a full-width hear slab;
    ``consume_at(hear_chunk, cols)`` is its column-restricted twin for
    residual delivery (``cols`` are sorted global ids; senders in the
    compact slab are already translated to global ids). A section whose
    plan opts into restriction must provide both.

    The runner never lets an executed chunk straddle a section
    boundary, so a section's callbacks see exactly the rows of its own
    span — which is what lets a fused emitter switch per-section state
    (the second Decay block's membership depends on the first's
    outcome) inside one plan.
    """

    width: int
    phase: str | None = None
    consume: Callable[[np.ndarray], None] | None = None
    consume_at: Callable[[np.ndarray, np.ndarray], None] | None = None
    #: Fused-pipeline fold: ``consume_coo(k, steps, nodes, senders)``
    #: receives the chunk height and the chunk's clean receptions as
    #: parallel int64 arrays — ``steps`` chunk-relative, ``nodes`` and
    #: ``senders`` **global** ids, arbitrary order. Required (on every
    #: section) for the plan's :class:`~repro.radio.network
    #: .PipelineForm` to be taken.
    consume_coo: (
        Callable[[int, np.ndarray, np.ndarray, np.ndarray], None] | None
    ) = None


@dataclasses.dataclass
class StreamedWindow:
    """An oblivious window executed as a stream of bounded chunks.

    The out-of-core form of :class:`ObliviousWindow`: instead of
    materializing ``(w, n)`` masks and receiving a ``(w, n)``
    ``hear_from`` reply, the segment carries a lazy
    :class:`~repro.radio.network.TransmitPlan` and the runner executes
    it through
    :meth:`~repro.radio.network.RadioNetwork.deliver_window_chunks`,
    delivering each ``(w_chunk, n)`` hear slab to ``consume`` as it is
    produced. The runner's reply to the segment is ``None`` — by the
    time the generator resumes, every chunk has already been folded.

    ``consume`` is the per-chunk folding callback. Generator-form
    emitters bind it to their own state (e.g. ``Decay._absorb_window``);
    a plan/commit source in streaming form
    (:class:`~repro.engine.streaming.StreamingSegmentProtocol`) leaves
    it ``None`` and the driving :func:`~repro.engine.runner
    .segment_schedule` routes chunks to the source's
    ``commit(hear_chunk)`` instead. Chunks arrive in step order, so an
    order-dependent fold (first-hear semantics) is exactly the fold of
    the monolithic reply.

    The obliviousness promise of :class:`ObliviousWindow` applies
    unchanged: no mask row may depend on anything heard inside the
    window. The chunk size is the *runner's* choice (its
    ``chunk_steps`` / ``mem_budget`` knobs) — a memory knob, never a
    semantics knob, because plans draw randomness lazily in row order
    (see :class:`~repro.radio.network.TransmitPlan`).
    """

    plan: TransmitPlan
    consume: Callable[[np.ndarray], None] | None = None
    #: Column-restricted fold for residual delivery:
    #: ``consume_at(hear_chunk, cols)`` receives the member columns of
    #: the full hear slab (senders already global ids). Optional — a
    #: window without it simply never restricts.
    consume_at: Callable[[np.ndarray, np.ndarray], None] | None = None
    #: Fused-pipeline fold (see :class:`PlanSection.consume_coo`).
    consume_coo: (
        Callable[[int, np.ndarray, np.ndarray, np.ndarray], None] | None
    ) = None
    #: Fused multi-phase form: when set, a tuple of
    #: :class:`PlanSection` whose widths sum to ``plan.total_steps``;
    #: the sections' callbacks replace ``consume``/``consume_at``.
    sections: tuple[PlanSection, ...] | None = None


@dataclasses.dataclass
class TracePhase:
    """Switch the network trace's current phase (costs no radio step).

    The runner answers with ``None``. Not allowed inside multiplexed
    sub-schedules (phase attribution is ambiguous when two protocols
    interleave; set the phase around the whole multiplexed run instead).
    """

    name: str


Segment = Union[ObliviousWindow, StreamedWindow, DecisionStep, TracePhase]
"""A single element of a protocol schedule."""

ProtocolSchedule = Generator[Segment, Any, Any]
"""The emitter type: yields segments, receives delivery results, and
returns the protocol's result via ``StopIteration.value``."""


class SegmentProtocol(abc.ABC):
    """A schedule emitter in plan/commit form.

    Unlike the generator form, planning the next segment and committing
    the previous segment's receptions are separate calls, which lets a
    combinator interleave this source's planned rows with another
    stream's before any of them execute (see module docstring, "Plan/
    commit form").

    The call contract, enforced by the runners in this package:

    * ``plan(rng)`` is called only at a *clean frontier*: every row this
      source has planned so far has been executed, and every fully
      executed segment has been committed. Randomness must be drawn
      inside ``plan`` (never ``commit``), in the same order the
      step-wise reference draws it.
    * ``commit(reply)`` is called exactly once per planned segment, in
      planning order, with the segment's full delivery result (a
      ``(w, n)`` ``hear_from`` matrix for a window, ``None`` for a
      :class:`TracePhase`). A run may end with the final segment's
      commit never arriving (budget exhaustion, a multiplexed main
      stream finishing first); sources must not rely on a trailing
      commit for correctness of *prior* state.
    """

    def __init__(self, n: int) -> None:
        self.n = n

    @abc.abstractmethod
    def plan(self, rng: np.random.Generator) -> Segment | None:
        """Produce the next segment, or ``None`` when the stream ends."""

    @abc.abstractmethod
    def commit(self, reply: Any) -> None:
        """Fold the delivery result of the oldest uncommitted segment."""

    def steps_remaining(self) -> int | None:
        """Exact number of radio-step rows still to be planned.

        ``None`` means data-dependent (unknown until the stream actually
        ends). Deterministic-length sources should override this: a
        multiplexed *main* stream must know its remaining step count
        exactly, because the reference drivers re-check termination
        between every pair of steps and the combinator can only skip
        those checks when the answer is predetermined.
        """
        return None

    def result(self) -> Any:
        """Protocol output; meaningful once ``plan`` returned ``None``."""
        raise ProtocolError(
            f"{type(self).__name__} does not define a result"
        )


class ScheduleSegmentAdapter(SegmentProtocol):
    """Lift a generator-form emitter onto :class:`SegmentProtocol`.

    The generator protocol cannot separate folding from planning —
    ``send(reply)`` does both in one motion — so this adapter stores the
    committed reply and feeds it to the generator at the *next*
    ``plan`` call. For single-stream execution that is exactly the
    :class:`~repro.engine.runner.WindowedRunner` loop. Inside a
    multiplexed run it means the emitter's fold runs at its own next
    planning slot rather than at the segment boundary; emitters that
    mutate state shared with the other stream (the ICP Decay
    background's ``knowledge`` commits) therefore need a native
    :class:`SegmentProtocol` implementation instead — the adapter only
    guarantees bit-identity for self-contained emitters.
    """

    def __init__(self, schedule: ProtocolSchedule, n: int) -> None:
        super().__init__(n)
        self._gen = schedule
        self._started = False
        self._awaiting_commit = False
        self._reply: Any = None
        self._done = False
        self._result: Any = None

    def plan(self, rng: np.random.Generator) -> Segment | None:
        if self._done:
            return None
        if self._awaiting_commit:
            raise ProtocolError(
                "ScheduleSegmentAdapter.plan() before the previous "
                "segment was committed: the generator form folds and "
                "plans in one motion, so plan/commit must alternate"
            )
        try:
            if self._started:
                segment = self._gen.send(self._reply)
            else:
                segment = next(self._gen)
        except StopIteration as stop:
            self._done = True
            self._result = stop.value
            return None
        self._started = True
        # A StreamedWindow's receptions are folded in-stream through its
        # consume callback and its reply is None, so there is nothing
        # left to commit: the generator just resumes with None at the
        # next plan() call.
        self._awaiting_commit = not isinstance(segment, StreamedWindow)
        self._reply = None
        return segment

    def commit(self, reply: Any) -> None:
        if not self._awaiting_commit:
            raise ProtocolError(
                "ScheduleSegmentAdapter.commit() without a planned "
                "segment awaiting one"
            )
        self._reply = reply
        self._awaiting_commit = False

    def steps_remaining(self) -> int | None:
        return 0 if self._done else None

    def result(self) -> Any:
        if not self._done:
            raise ProtocolError(
                "ScheduleSegmentAdapter.result() before the schedule "
                "finished"
            )
        return self._result


__all__ = [
    "COIN_BUDGET",
    "DecisionStep",
    "ObliviousWindow",
    "PlanSection",
    "ProtocolSchedule",
    "ScheduleSegmentAdapter",
    "Segment",
    "SegmentProtocol",
    "StreamedWindow",
    "TracePhase",
    "coin_chunk",
]
