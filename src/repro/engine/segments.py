"""The ``ProtocolSchedule`` intermediate representation.

A *schedule emitter* is a generator that describes a packet-level
protocol as a stream of segments instead of imperative ``deliver``
calls::

    def my_schedule(network, rng):
        hear = yield DecisionStep(mask)          # one adaptive step
        window = yield ObliviousWindow(masks)    # a batch of fixed steps
        ...
        return result                            # via StopIteration

The generator receives, through ``send``, exactly what the network
delivered for the segment it yielded: a length-``n`` ``hear_from``
vector for a :class:`DecisionStep`, a ``(w, n)`` matrix for an
:class:`ObliviousWindow`, ``None`` for a :class:`TracePhase`. Emitters
never touch the network themselves — execution strategy (batched sparse
products vs. fused single steps) is entirely the runner's business,
which is what lets one protocol description run bit-identically on
either path.

The obliviousness contract
--------------------------
Yielding an :class:`ObliviousWindow` is a *promise*: none of the
window's masks depends on anything heard inside the window. Every mask
may (and usually does) depend on receptions from segments already
completed, and on randomness drawn while building the window. Emitters
that draw coins for a window must draw them in the same order the
step-wise reference implementation draws them (numpy's row-major
``rng.random((w, n))`` equals ``w`` consecutive ``rng.random(n)``
calls), which is what keeps engine and reference runs on one seed
bit-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Generator, Union

import numpy as np

#: Cap on the number of boolean coin-matrix entries an emitter should
#: materialize per window: windows larger than this are chunked. Chunked
#: ``rng.random`` draws are stream-identical to one big draw, so the
#: chunk size is a memory knob, never a semantics knob.
COIN_BUDGET = 1 << 22


def coin_chunk(n: int, budget: int = COIN_BUDGET) -> int:
    """Window rows to draw per chunk for an ``n``-node coin matrix."""
    return max(1, budget // max(1, n))


@dataclasses.dataclass
class ObliviousWindow:
    """A block of radio steps with masks fixed before the block starts.

    ``masks`` has shape ``(w, n)``; row ``t`` is the transmit mask of
    window step ``t``. The runner answers with the ``(w, n)``
    ``hear_from`` matrix of
    :meth:`repro.radio.network.RadioNetwork.deliver_window`.
    """

    masks: np.ndarray


@dataclasses.dataclass
class DecisionStep:
    """A single radio step whose mask may depend on prior receptions.

    The runner answers with the length-``n`` ``hear_from`` vector of
    :meth:`repro.radio.network.RadioNetwork.deliver`.
    """

    mask: np.ndarray


@dataclasses.dataclass
class TracePhase:
    """Switch the network trace's current phase (costs no radio step).

    The runner answers with ``None``. Not allowed inside multiplexed
    sub-schedules (phase attribution is ambiguous when two protocols
    interleave; set the phase around the whole multiplexed run instead).
    """

    name: str


Segment = Union[ObliviousWindow, DecisionStep, TracePhase]
"""A single element of a protocol schedule."""

ProtocolSchedule = Generator[Segment, Any, Any]
"""The emitter type: yields segments, receives delivery results, and
returns the protocol's result via ``StopIteration.value``."""

__all__ = [
    "COIN_BUDGET",
    "DecisionStep",
    "ObliviousWindow",
    "ProtocolSchedule",
    "Segment",
    "TracePhase",
    "coin_chunk",
]
