"""Streaming window execution: memory budgets and the chunked
plan/commit form.

The windowed engine's one scaling wall was the dense ``(w, n)``
hear-window: a protocol block of ``w`` oblivious steps materialized
``w * n`` masks, coins, and ``hear_from`` cells at once, so experiments
stalled around ``n = 10^4`` however fast the kernels were. This module
is the policy layer of the fix (the mechanism is
:meth:`~repro.radio.network.RadioNetwork.deliver_window_chunks` and the
:class:`~repro.engine.segments.StreamedWindow` segment):

* a **cost model** turning a target peak-byte budget into the
  ``chunk_steps`` slab height the runner streams at
  (:func:`chunk_steps_for_budget`), plus a process-wide default budget
  (:func:`set_memory_budget`) so experiment harnesses can impose one
  cap across every protocol a trial runs;

* the **streaming plan/commit form**
  (:class:`StreamingSegmentProtocol`): a
  :class:`~repro.engine.segments.SegmentProtocol` whose
  ``commit(hear_chunk)`` is called once per executed chunk of a
  streamed window, in step order, instead of once with the whole
  ``(w, n)`` reply;

* the **compatibility adapter** (:class:`StreamedCommitAdapter`)
  lifting any whole-window :class:`~repro.engine.segments
  .SegmentProtocol` onto the streaming interface unmodified — planned
  windows execute chunk-wise (bounding the kernels' working set) and
  the chunks are buffered back into the one whole-window ``commit`` the
  wrapped source expects.

Bit-identity: chunking never changes results. Window steps are
independent given their masks, every delivery kernel computes exact
small-integer sums, plans draw their coins lazily in row order
(stream-identical to one monolithic draw), and chunks are folded in
step order — so streamed execution reproduces the monolithic path
bit-for-bit: results, ``steps_elapsed``, trace totals, and the final
rng state (pinned by ``tests/test_engine_streaming.py`` across chunk
sizes including the ``1``, ``w``, and ``w + 1`` boundary cases).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..radio.errors import ProtocolError
from ..radio.network import as_transmit_plan
from .segments import (
    ObliviousWindow,
    Segment,
    SegmentProtocol,
    StreamedWindow,
    coin_chunk,
)

#: Cost-model bytes per (window step, node) cell of a streamed chunk.
#: A chunk of ``k`` rows holds, at peak, the float64 coin draw (8), the
#: boolean masks (1), the int64 hear slab (8), and the larger of the
#: kernel intermediates — the dense path's float64 right-hand side,
#: output, and unpacked counts (24), or the sparse/gather path's count
#: and id-sum accumulators (16) — plus short-lived temporaries
#: (comparison masks, the routing popcounts). Measured peaks on the
#: auto-routed dense regime sit near 44 bytes/cell; 64 keeps the
#: memory-ceiling regression's margin wide across numpy versions.
#: The sparse product's COO output scales with the transmitters'
#: degree sum rather than with ``k * n``; under ``delivery="auto"``
#: the router pre-empts that blow-up per chunk (popcount-sparse rows
#: whose estimated COO bytes outweigh the packed dense cells route
#: dense — see :meth:`repro.radio.network.RadioNetwork
#: .dense_window_rows`), so only a forced ``delivery="sparse"`` can
#: still exceed the model on very dense graphs.
#: The fused pipeline pass (:mod:`repro.engine.kernels`) stays *under*
#: this model — it drops the int64 hear slab entirely (receptions come
#: back as sparse COO triples) — but chunk heights are deliberately
#: NOT raised for it: the model is a ceiling shared by every delivery
#: path of the same plan, and the pipeline's savings are banked as
#: headroom rather than spent on taller chunks.
STREAM_CELL_BYTES = 64

#: Process-wide default memory budget in bytes (None = no budget).
_default_memory_budget: int | None = None


def chunk_steps_for_budget(n: int, mem_budget: int) -> int:
    """Slab height that keeps one streamed chunk near ``mem_budget`` bytes.

    The :data:`STREAM_CELL_BYTES` cost model: a chunk of ``k`` steps
    over ``n`` nodes costs about ``k * n * STREAM_CELL_BYTES`` bytes of
    working set, so ``k = mem_budget / (n * STREAM_CELL_BYTES)``,
    floored at one row (a window can never stream finer than one step).
    """
    if mem_budget < 1:
        raise ProtocolError(
            f"mem_budget must be >= 1 byte, got {mem_budget}"
        )
    return max(1, mem_budget // (STREAM_CELL_BYTES * max(1, n)))


def set_memory_budget(mem_budget: int | None) -> None:
    """Set the process-wide default peak-memory target for streaming.

    Runners whose ``chunk_steps``/``mem_budget`` knobs are unset resolve
    their slab height from this budget (see :func:`resolve_chunk_steps`).
    ``None`` clears it. Experiment harnesses
    (:func:`repro.analysis.experiments.run_trials`) set it around each
    trial — including inside process-pool workers — so one knob caps
    every protocol a trial runs.
    """
    global _default_memory_budget
    if mem_budget is not None and mem_budget < 1:
        raise ProtocolError(
            f"mem_budget must be >= 1 byte, got {mem_budget}"
        )
    _default_memory_budget = mem_budget


def memory_budget() -> int | None:
    """The process-wide default memory budget (None = unset)."""
    return _default_memory_budget


def resolve_chunk_steps(
    n: int,
    chunk_steps: int | None = None,
    mem_budget: int | None = None,
) -> int | None:
    """Resolve the streaming slab height from the three knob layers.

    Precedence: an explicit ``chunk_steps`` wins; else an explicit
    ``mem_budget`` is converted through the cost model; else the
    process-wide default budget; else ``None`` — meaning "no configured
    bound" (runners then fall back to the legacy
    :func:`~repro.engine.segments.coin_chunk` granularity for streamed
    plans and leave materialized windows unchunked).
    """
    if chunk_steps is not None:
        if chunk_steps < 1:
            raise ProtocolError(
                f"chunk_steps must be >= 1, got {chunk_steps}"
            )
        return chunk_steps
    if mem_budget is not None:
        return chunk_steps_for_budget(n, mem_budget)
    if _default_memory_budget is not None:
        return chunk_steps_for_budget(n, _default_memory_budget)
    return None


def default_stream_chunk(n: int, resolved: int | None) -> int:
    """Slab height for a streamed plan: the resolved knob, or the legacy
    coin-budget granularity (what the pre-streaming emitters chunked
    their coin draws at, keeping default-memory behavior unchanged)."""
    return resolved if resolved is not None else coin_chunk(n)


class StreamingSegmentProtocol(SegmentProtocol):
    """A plan/commit source whose window commits arrive chunk-wise.

    The streaming counterpart of :class:`~repro.engine.segments
    .SegmentProtocol`: ``plan`` may return a
    :class:`~repro.engine.segments.StreamedWindow` (typically built with
    :meth:`stream`, leaving ``consume`` unset), and the driver then
    calls ``commit(hear_chunk)`` once per executed chunk, in step
    order — the final chunk of a segment is recognizable by the source's
    own step accounting (it knows its plan's ``total_steps``). Segments
    other than streamed windows keep the whole-reply commit contract of
    the base class.

    Randomness discipline is unchanged *in order* but not in place: a
    streamed plan's coins are drawn lazily inside
    ``TransmitPlan.masks``, between ``plan`` and the chunk commits, in
    row order — the same stream as the reference's per-step draws.
    """

    def stream(self, plan) -> StreamedWindow:
        """Wrap a plan for this source: chunks route to ``commit``."""
        return StreamedWindow(plan, consume=None)


class StreamedCommitAdapter(StreamingSegmentProtocol):
    """Lift a whole-window :class:`~repro.engine.segments.SegmentProtocol`
    onto the streaming interface, unmodified.

    Planned :class:`~repro.engine.segments.ObliviousWindow` segments are
    re-emitted as streamed windows, so the runner executes them through
    the bounded chunk kernels; the executed chunks are buffered and the
    wrapped source's ``commit`` receives the one stacked ``(w, n)``
    reply it was written for. The memory win is accordingly partial —
    kernel intermediates are bounded by ``chunk_steps`` but the full
    reply still materializes at the commit boundary — which is exactly
    the compatibility trade: existing sources run on the streaming
    pipeline with zero changes, and sources that want the full win
    implement :class:`StreamingSegmentProtocol` natively (fold each
    chunk, never stack).

    Other segment kinds (decision steps, zero-width windows,
    :class:`~repro.engine.segments.TracePhase`) pass through untouched
    with the whole-reply commit.
    """

    def __init__(self, source: SegmentProtocol) -> None:
        super().__init__(source.n)
        self.source = source
        self._streaming = False
        self._chunks: list[np.ndarray] = []
        self._pending = 0

    def plan(self, rng: np.random.Generator) -> Segment | None:
        if self._pending:
            raise ProtocolError(
                "StreamedCommitAdapter.plan() before the previous "
                "window's chunks were all committed"
            )
        segment = self.source.plan(rng)
        if isinstance(segment, ObliviousWindow) and segment.masks.shape[0]:
            self._streaming = True
            self._chunks = []
            self._pending = segment.masks.shape[0]
            return self.stream(as_transmit_plan(segment.masks))
        self._streaming = False
        return segment

    def commit(self, reply: Any) -> None:
        if not self._streaming:
            self.source.commit(reply)
            return
        self._chunks.append(reply)
        self._pending -= reply.shape[0]
        if self._pending < 0:
            raise ProtocolError(
                "StreamedCommitAdapter received more chunk rows than "
                "the planned window holds"
            )
        if self._pending == 0:
            stacked = (
                self._chunks[0]
                if len(self._chunks) == 1
                else np.concatenate(self._chunks, axis=0)
            )
            self._chunks = []
            self._streaming = False
            self.source.commit(stacked)

    def steps_remaining(self) -> int | None:
        return self.source.steps_remaining()

    def result(self) -> Any:
        return self.source.result()


__all__ = [
    "STREAM_CELL_BYTES",
    "StreamedCommitAdapter",
    "StreamingSegmentProtocol",
    "chunk_steps_for_budget",
    "default_stream_chunk",
    "memory_budget",
    "resolve_chunk_steps",
    "set_memory_budget",
]
