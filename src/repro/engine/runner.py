"""Execution of protocol schedules on a radio network.

:class:`WindowedRunner` is the single place where protocol schedules
meet the simulator: :class:`~repro.engine.segments.ObliviousWindow`
segments execute through the batched
:meth:`~repro.radio.network.RadioNetwork.deliver_window` sparse product,
:class:`~repro.engine.segments.DecisionStep` segments through the fused
single-step :meth:`~repro.radio.network.RadioNetwork.deliver` path.
Because both network entry points are bit-identical per step, a schedule
executed here produces exactly the receptions, trace totals and
``steps_elapsed`` of the step-wise loop it replaced — only faster.

:func:`protocol_schedule` lifts any legacy
:class:`~repro.radio.protocol.Protocol` object into a stream of decision
steps, so pre-engine protocols (and time-multiplexed combinations of
them, whose interleaving makes every step a decision point — the other
protocol's steps intervene between one's own) run unchanged on the
runner. This adapter is how Intra-Cluster Propagation with its Decay
background enters the engine.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..radio.errors import BudgetExceededError, ProtocolError
from ..radio.network import RadioNetwork
from .segments import (
    DecisionStep,
    ObliviousWindow,
    ProtocolSchedule,
    TracePhase,
)


class WindowedRunner:
    """Drives schedule emitters on one :class:`RadioNetwork`.

    Parameters
    ----------
    network:
        The radio network all schedules run on.
    max_steps:
        Optional radio-step budget across all :meth:`run` calls on this
        runner. A segment whose execution would exceed the budget raises
        :class:`~repro.radio.errors.BudgetExceededError` *before*
        executing, so a bounded run never overshoots — the engine
        counterpart of :func:`repro.radio.protocol.run_protocol`'s
        budget check.
    """

    def __init__(
        self, network: RadioNetwork, max_steps: int | None = None
    ) -> None:
        self.network = network
        self.max_steps = max_steps
        self.steps_executed = 0

    def _charge(self, steps: int) -> None:
        if (
            self.max_steps is not None
            and self.steps_executed + steps > self.max_steps
        ):
            raise BudgetExceededError(
                f"schedule would exceed the {self.max_steps}-step budget "
                f"({self.steps_executed} executed, next segment {steps})"
            )
        self.steps_executed += steps

    def run(self, schedule: ProtocolSchedule) -> Any:
        """Execute ``schedule`` to completion and return its result.

        The emitter's ``StopIteration`` value is the protocol result —
        emitters ``return`` it like any generator.
        """
        reply: Any = None
        while True:
            try:
                segment = schedule.send(reply)
            except StopIteration as stop:
                return stop.value
            if isinstance(segment, ObliviousWindow):
                self._charge(segment.masks.shape[0])
                reply = self.network.deliver_window(segment.masks)
            elif isinstance(segment, DecisionStep):
                self._charge(1)
                reply = self.network.deliver(segment.mask)
            elif isinstance(segment, TracePhase):
                self.network.trace.enter_phase(segment.name)
                reply = None
            else:
                raise ProtocolError(
                    f"schedule yielded a non-segment: {segment!r}"
                )


def run_schedule(
    network: RadioNetwork,
    schedule: ProtocolSchedule,
    max_steps: int | None = None,
) -> Any:
    """One-shot convenience: ``WindowedRunner(network, max_steps).run(...)``."""
    return WindowedRunner(network, max_steps=max_steps).run(schedule)


def protocol_schedule(
    protocol: Any,
    rng: np.random.Generator,
    steps: int | None = None,
) -> ProtocolSchedule:
    """Adapt a legacy :class:`~repro.radio.protocol.Protocol` object.

    Yields one :class:`DecisionStep` per protocol step (every legacy
    step is conservatively treated as adaptive) until the protocol
    finishes — or for exactly ``steps`` steps, whichever comes first,
    mirroring :func:`repro.radio.protocol.run_steps`. Because the
    adapter calls ``transmit_mask`` and ``observe`` in exactly the
    step-wise drivers' order, running it on a :class:`WindowedRunner`
    is bit-identical to :func:`~repro.radio.protocol.run_steps` on the
    same seed. Returns ``protocol.result()`` when the protocol
    finished, else ``None``.
    """
    if steps is not None and steps < 0:
        raise ProtocolError(f"steps must be >= 0, got {steps}")
    taken = 0
    while not protocol.finished and (steps is None or taken < steps):
        hear_from = yield DecisionStep(protocol.transmit_mask(rng))
        protocol.observe(hear_from)
        taken += 1
    return protocol.result() if protocol.finished else None


__all__ = [
    "WindowedRunner",
    "protocol_schedule",
    "run_schedule",
]
