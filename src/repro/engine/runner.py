"""Execution of protocol schedules on a radio network.

:class:`WindowedRunner` is the single place where protocol schedules
meet the simulator: :class:`~repro.engine.segments.ObliviousWindow`
segments execute through the batched
:meth:`~repro.radio.network.RadioNetwork.deliver_window` product,
:class:`~repro.engine.segments.DecisionStep` segments through the fused
single-step :meth:`~repro.radio.network.RadioNetwork.deliver` path.
Because both network entry points are bit-identical per step, a schedule
executed here produces exactly the receptions, trace totals and
``steps_elapsed`` of the step-wise loop it replaced — only faster.

Delivery routing: ``deliver_window`` has two internally equivalent
execution strategies — the sparse product and, for windows whose masks
light up most (listener, step) pairs, an exact dense matmul. The
runner's ``delivery`` knob (``"auto"`` by default) selects between them
per window from the masks' popcounts; both are exact small-integer
sums, so the choice can never change a single ``hear_from`` bit (the
contract ``tests/test_schedule_contract.py`` re-verifies on every
window of every in-tree emitter).

Two adapters bridge the older protocol forms onto the engine:

* :func:`protocol_schedule` lifts a legacy
  :class:`~repro.radio.protocol.Protocol` object into a stream of
  decision steps — one adaptive step per protocol step.
* :class:`ProtocolSegmentSource` lifts the same objects onto the
  plan/commit :class:`~repro.engine.segments.SegmentProtocol` interface
  as width-1 windows, which is what lets a deterministic-length
  protocol (ICP's slot passes) ride the
  :func:`~repro.engine.mux.multiplex` combinator.

:func:`segment_schedule` closes the loop in the other direction: it
drives any :class:`~repro.engine.segments.SegmentProtocol` as an
ordinary generator-form schedule, so plan/commit sources run on the
same runner (and the same budget accounting) as everything else.
"""

from __future__ import annotations

import dataclasses
from time import perf_counter
from typing import Any

import numpy as np

from ..radio.errors import BudgetExceededError, ProtocolError
from ..radio.network import (
    DELIVERY_MODES,
    NO_SENDER,
    PipelineForm,
    RadioNetwork,
    TransmitPlan,
    as_transmit_plan,
)
from . import kernels
from .kernels import require_delivery_mode
from .residual import (
    REBUILD_FACTOR,
    RESIDUAL_MAX_FRACTION,
    RESTRICT_LIVE_FRACTION,
    ResidualContext,
    validate_restrict,
)
from .segments import (
    DecisionStep,
    ObliviousWindow,
    PlanSection,
    ProtocolSchedule,
    SegmentProtocol,
    StreamedWindow,
    TracePhase,
)
from .streaming import default_stream_chunk, resolve_chunk_steps


class WindowedRunner:
    """Drives schedule emitters on one :class:`RadioNetwork`.

    Parameters
    ----------
    network:
        The radio network all schedules run on.
    max_steps:
        Optional radio-step budget across all :meth:`run` calls on this
        runner. A segment whose execution would exceed the budget raises
        :class:`~repro.radio.errors.BudgetExceededError` *before*
        executing, so a bounded run never overshoots — the engine
        counterpart of :func:`repro.radio.protocol.run_protocol`'s
        budget check. Budget charges are per radio step regardless of
        execution strategy: a ``w``-row window costs ``w`` whether it
        runs sparse, dense, or as a multiplexed joint window.
    delivery:
        Window execution strategy, forwarded to
        :meth:`~repro.radio.network.RadioNetwork.deliver_window`:
        ``"auto"`` (default) routes each window by its estimated
        density, ``"sparse"``/``"dense"`` force one path. All three are
        bit-identical; this is a performance knob only.
    chunk_steps, mem_budget:
        The streaming knobs — memory knobs only, never semantics knobs
        (streamed execution is bit-identical whatever the slab height).
        ``chunk_steps`` fixes the slab height directly; ``mem_budget``
        derives it from a target peak-bytes cap through
        :func:`~repro.engine.streaming.chunk_steps_for_budget`; with
        neither set, the process-wide default budget
        (:func:`~repro.engine.streaming.set_memory_budget`) applies, and
        absent that, :class:`~repro.engine.segments.StreamedWindow`
        plans stream at the legacy
        :func:`~repro.engine.segments.coin_chunk` granularity while
        materialized :class:`~repro.engine.segments.ObliviousWindow`
        segments execute unchunked (the pre-streaming behavior). When a
        bound *is* configured, materialized windows wider than it are
        executed slab-wise too, bounding the kernels' working set.
    """

    def __init__(
        self,
        network: RadioNetwork,
        max_steps: int | None = None,
        delivery: str = "auto",
        chunk_steps: int | None = None,
        mem_budget: int | None = None,
        restrict: str = "auto",
    ) -> None:
        # All delivery modes (including the compiled numba/cupy
        # backends) validate through the kernel registry: unknown names
        # and absent dependencies are refused here, before any run.
        require_delivery_mode(delivery)
        validate_restrict(restrict)
        # Validate the streaming knobs eagerly (resolution also consults
        # the process-wide default, so it happens per execution).
        resolve_chunk_steps(network.n, chunk_steps, mem_budget)
        self.network = network
        self.max_steps = max_steps
        self.delivery = delivery
        self.chunk_steps = chunk_steps
        self.mem_budget = mem_budget
        self.restrict = restrict
        self.steps_executed = 0
        # Residual-delivery cache: the current ResidualContext, plus
        # the live count at which auto last declined one (so the
        # closure test is only retried after the live set halves again).
        self._residual_cache: ResidualContext | None = None
        self._residual_declined_live: int | None = None
        # Reused (n,) threshold row for the non-binary pipeline mask
        # fallback (see _pipeline_masks).
        self._pipeline_thresh: np.ndarray | None = None

    def _resolved_chunk_steps(self, width: int | None = None) -> int | None:
        """The configured streaming bound, or ``None`` when unset.

        ``width`` re-resolves a ``mem_budget`` against a restricted
        column width: the same byte cap buys proportionally taller
        slabs on a residual world.
        """
        return resolve_chunk_steps(
            self.network.n if width is None else max(1, width),
            self.chunk_steps,
            self.mem_budget,
        )

    def _charge(self, steps: int) -> None:
        if (
            self.max_steps is not None
            and self.steps_executed + steps > self.max_steps
        ):
            raise BudgetExceededError(
                f"schedule would exceed the {self.max_steps}-step budget "
                f"({self.steps_executed} executed, next segment {steps})"
            )
        self.steps_executed += steps

    # The execution hooks exist so the contract-checking
    # ValidatingRunner (repro.engine.validate) can interpose replay
    # checks without duplicating the dispatch loop.
    def _execute_window(self, masks: np.ndarray) -> np.ndarray:
        """Execute one charged oblivious window.

        When a streaming bound is configured and the window is wider,
        the kernels run slab-wise through ``deliver_window_chunks`` into
        one preallocated reply — identical results, trace, and step
        accounting (the trace keeps aggregates), with the kernels'
        working set bounded by the slab height.
        """
        chunk = self._resolved_chunk_steps()
        w = masks.shape[0]
        if chunk is None or w <= chunk:
            return self.network.deliver_window(masks, mode=self.delivery)
        hear_from = np.full((w, self.network.n), NO_SENDER, dtype=np.int64)
        done = 0
        for slab in self.network.deliver_window_chunks(
            masks, chunk_steps=chunk, mode=self.delivery
        ):
            hear_from[done : done + slab.shape[0]] = slab
            done += slab.shape[0]
        return hear_from

    def _execute_step(self, mask: np.ndarray) -> np.ndarray:
        """Execute one charged decision step."""
        return self.network.deliver(mask)

    def _plan_sections(
        self, segment: StreamedWindow
    ) -> tuple[PlanSection, ...]:
        """The section list of a streamed window.

        Fused windows carry their own sections; a plain window becomes
        one anonymous section wrapping its ``consume``/``consume_at``
        callbacks, so there is exactly one streaming loop either way.
        """
        if segment.sections is not None:
            total = sum(s.width for s in segment.sections)
            if total != segment.plan.total_steps:
                raise ProtocolError(
                    f"fused StreamedWindow sections cover {total} steps "
                    f"but the plan has {segment.plan.total_steps}"
                )
            return tuple(segment.sections)
        return (
            PlanSection(
                segment.plan.total_steps,
                None,
                segment.consume,
                segment.consume_at,
                segment.consume_coo,
            ),
        )

    def _restriction_for(
        self, plan: TransmitPlan, sections: tuple[PlanSection, ...]
    ) -> ResidualContext | None:
        """Decide (and cache) the residual context for one plan.

        ``None`` means execute full-width. Restriction needs the plan's
        opt-in surface (``support`` + ``masks_at``) and every section's
        ``consume_at``. Under ``"auto"``, it also needs to be worth it:
        the live fraction at or below
        :data:`~repro.engine.residual.RESTRICT_LIVE_FRACTION` and the
        one-hop closure below
        :data:`~repro.engine.residual.RESIDUAL_MAX_FRACTION` of ``n``.
        Contexts are reused while the support stays inside the cached
        member set and the live count has not halved since the build
        (:data:`~repro.engine.residual.REBUILD_FACTOR`); ``"force"``
        restricts whenever the plan allows, which is how the
        equivalence suites pin the restricted path at any scale.
        """
        if self.restrict == "off":
            return None
        if plan.support is None or plan.masks_at is None:
            return None
        if any(s.consume_at is None for s in sections):
            return None
        network = self.network
        support = np.asarray(plan.support, dtype=bool)
        live = int(support.sum())
        if self.restrict == "auto":
            if live > RESTRICT_LIVE_FRACTION * network.n:
                return None
            declined = self._residual_declined_live
            if declined is not None and live > REBUILD_FACTOR * declined:
                return None
        cached = self._residual_cache
        if cached is not None and cached.covers(support):
            if (
                self.restrict == "force"
                or live >= REBUILD_FACTOR * cached.live_at_build
            ):
                return cached
        ctx = ResidualContext(network, support)
        if (
            self.restrict == "auto"
            and ctx.k > RESIDUAL_MAX_FRACTION * network.n
        ):
            self._residual_declined_live = live
            return None
        self._residual_declined_live = None
        self._residual_cache = ctx
        network.residual_stats["rebuilds"] += 1
        return ctx

    def _coo_fold_ok(self, sections: tuple[PlanSection, ...]) -> bool:
        """Whether the fused COO reception path may serve this plan.

        Needs every section's ``consume_coo`` fold and a delivery mode
        that routes per row (``"auto"``, gated on the module toggle so
        benchmarks can pin the unfused baseline, or a forced
        ``"pipeline"``). The validating runner overrides this to
        ``False``: its replay machinery compares the *slab* paths, and
        the pipeline itself is pinned by its own equivalence suite.
        """
        if self.delivery == "auto":
            if not kernels.pipeline_enabled():
                return False
        elif self.delivery != "pipeline":
            return False
        return all(s.consume_coo is not None for s in sections)

    def _pipeline_for(
        self, plan: TransmitPlan, sections: tuple[PlanSection, ...]
    ) -> PipelineForm | None:
        """The plan's separable form when the fused pass may run."""
        if plan.pipeline is None or not self._coo_fold_ok(sections):
            return None
        return plan.pipeline

    def _execute_stream(self, segment: StreamedWindow) -> None:
        """Execute one streamed window, folding chunks as they arrive.

        Budget charges land per chunk, after its masks are produced and
        before it executes — the granularity (and rng consumption on an
        aborted run) of the pre-streaming emitters, which drew each
        chunk's coins before yielding it. Per-slab processing goes
        through :meth:`_consume_stream_slab`, the hook the validating
        runner interposes on — there is exactly one streaming loop.

        Fused windows execute section by section (chunks never straddle
        a section boundary; each section may enter its own trace
        phase), and plans that opt in may run column-restricted on a
        residual context (:meth:`_restriction_for`) — both reduce to
        the classic single-loop behavior when unused.
        """
        plan = segment.plan
        sections = self._plan_sections(segment)
        ctx = self._restriction_for(plan, sections)
        if ctx is not None:
            self._execute_stream_restricted(plan, sections, ctx)
            return
        form = self._pipeline_for(plan, sections)
        if form is not None:
            self._execute_stream_pipeline(plan, sections, form)
            return
        timing = self.network.phase_timing
        chunk = default_stream_chunk(
            self.network.n, self._resolved_chunk_steps()
        )
        inner = plan.masks
        # Plans are one-shot (lazy coin draws cannot be replayed), so
        # the charging wrapper also stashes each chunk's masks for the
        # per-slab hook; exactly one chunk is in flight at a time.
        current: list[np.ndarray] = []
        coin_spent = [0.0]
        base = 0
        for section in sections:
            if section.phase is not None:
                self.network.trace.enter_phase(section.phase)

            def charged(
                start: int, stop: int, _base: int = base
            ) -> np.ndarray:
                t0 = perf_counter()
                masks = np.asarray(inner(_base + start, _base + stop))
                coin_spent[0] += perf_counter() - t0
                self._charge(stop - start)
                current.append(masks)
                return masks

            stream = self.network.deliver_window_chunks(
                TransmitPlan(section.width, charged),
                chunk_steps=chunk,
                mode=self.delivery,
            )
            while True:
                # "deliver" is the chunk's wall time minus its mask
                # production (timed inside `charged`); with faults
                # installed the classic path's transform time lands in
                # "deliver" too — only the fused pass separates it.
                coin_spent[0] = 0.0
                t0 = perf_counter()
                slab = next(stream, None)
                if slab is None:
                    break
                timing["deliver"] += perf_counter() - t0 - coin_spent[0]
                timing["coins"] += coin_spent[0]
                t0 = perf_counter()
                self._consume_stream_slab(
                    slab, current.pop(), section.consume
                )
                timing["commit"] += perf_counter() - t0
            self.network.residual_stats["full_steps"] += section.width
            base += section.width

    def _pipeline_masks(
        self,
        form: PipelineForm,
        start: int,
        k: int,
        col_probs: np.ndarray,
        binary_cols: np.ndarray | None = None,
    ) -> np.ndarray:
        """Produce chunk rows ``[start, start + k)`` of a pipeline plan.

        The compiled leg draws the PCG64 coins inline from per-row
        jump-ahead launch states and writes the threshold bits in the
        same loop — the float coin block never exists — then advances
        the generator past the block (:meth:`CoinField.skip`), leaving
        the rng exactly where the block draw would. The numpy fallback
        draws the block (into the coin field's reused scratch) and
        thresholds it without a ``(k, n)`` float threshold matrix:
        when ``binary_cols`` is given — the section's column factor is
        0/1, the Decay/MIS case — the whole block compares against the
        row probabilities alone and masks with one boolean AND
        (``coin < rp * col`` with ``col`` in {0, 1} *is* ``(coin <
        rp) & col``: a [0, 1) coin is never below 0); otherwise one
        reused ``(n,)`` threshold row per step. Both produce the
        emitter's mask bits exactly (see
        :class:`~repro.radio.network.PipelineForm`).
        """
        coins = form.coins
        rp = np.ascontiguousarray(
            form.row_probs[start : start + k], dtype=np.float64
        )
        out = np.empty((k, self.network.n), dtype=bool)
        kern = kernels.pipeline_mask_kernel()
        if kern is not None and coins.offset_ok:  # pragma: no cover
            s_hi, s_lo, i_hi, i_lo, m_hi, m_lo = coins.launch_states(
                start, start + k
            )
            kern(s_hi, s_lo, i_hi, i_lo, m_hi, m_lo, rp, col_probs, out)
            coins.skip(k)
            self.network._bump_kernel("pipeline-numba", k)
        else:
            block = coins.draw(start, start + k)
            if binary_cols is not None:
                np.less(block, rp[:, None], out=out)
                out &= binary_cols[None, :]
            else:
                thresh = self._pipeline_thresh
                if thresh is None or thresh.shape[0] != self.network.n:
                    thresh = np.empty(self.network.n, dtype=np.float64)
                    self._pipeline_thresh = thresh
                for t in range(k):
                    np.multiply(col_probs, rp[t], out=thresh)
                    np.less(block[t], thresh, out=out[t])
            self.network._bump_kernel("pipeline-numpy", k)
        return out

    def _execute_stream_pipeline(
        self,
        plan: TransmitPlan,
        sections: tuple[PlanSection, ...],
        form: PipelineForm,
    ) -> None:
        """The fused coin+fault+delivery twin of :meth:`_execute_stream`.

        Per chunk: produce the mask bits straight from the separable
        thresholds (:meth:`_pipeline_masks`), apply the fault transform
        **in place** on the one mask array
        (:meth:`~repro.faults.state.FaultState.transform_window_inplace`),
        deliver to a sparse ``(step, node, sender)`` reception triple
        (:meth:`~repro.engine.kernels.DeliveryKernels.execute_coo` — no
        ``(k, n)`` hear slab), silence deaf receptions point-wise, and
        fold through the section's ``consume_coo``. Charging, trace
        accounting, fault counters, and rng consumption are identical
        to the classic path chunk for chunk — the pipeline equivalence
        suite pins all of it bit-for-bit. Each stage feeds its own
        ``phase_timing`` bucket.
        """
        network = self.network
        timing = network.phase_timing
        fault_state = network._fault_state
        delivery = network._delivery_kernels()
        mode = "auto" if self.delivery == "pipeline" else self.delivery
        chunk = default_stream_chunk(
            network.n, self._resolved_chunk_steps()
        )
        base = 0
        for section in sections:
            if section.phase is not None:
                network.trace.enter_phase(section.phase)
            t0 = perf_counter()
            col_probs = np.ascontiguousarray(
                form.col_probs(base), dtype=np.float64
            )
            # Per-section column analysis, both optional fast paths:
            # a 0/1 column factor lets the mask stage threshold the
            # whole block at once, and the active index list lets the
            # delivery stage scan transmitters compact (faults only
            # clear bits, so the promise survives the transform).
            active = col_probs != 0.0
            binary_cols = (
                active if bool((col_probs[active] == 1.0).all()) else None
            )
            cols = (
                np.flatnonzero(active)
                if 2 * int(active.sum()) <= network.n
                else None
            )
            timing["plan"] += perf_counter() - t0
            done = 0
            while done < section.width:
                k = min(chunk, section.width - done)
                start = base + done
                t0 = perf_counter()
                masks = self._pipeline_masks(
                    form, start, k, col_probs, binary_cols
                )
                timing["coins"] += perf_counter() - t0
                self._charge(k)
                t1 = perf_counter()
                if fault_state is not None:
                    fault_state.transform_window_inplace(
                        masks, network.steps_elapsed
                    )
                t2 = perf_counter()
                timing["faults"] += t2 - t1
                steps, nodes, senders = delivery.execute_coo(
                    masks, mode, counters=network.kernel_use, cols=cols
                )
                receptions = int(steps.size)
                if fault_state is not None and receptions:
                    deaf = fault_state.deaf_at(
                        steps + network.steps_elapsed, nodes
                    )
                    dropped = int(np.count_nonzero(deaf))
                    if dropped:
                        keep = ~deaf
                        steps = steps[keep]
                        nodes = nodes[keep]
                        senders = senders[keep]
                        receptions -= dropped
                        fault_state.note_silenced(dropped)
                t3 = perf_counter()
                timing["deliver"] += t3 - t2
                network._account_window(masks, receptions)
                section.consume_coo(k, steps, nodes, senders)
                timing["commit"] += perf_counter() - t3
                done += k
            network.residual_stats["full_steps"] += section.width
            base += section.width

    def _execute_stream_restricted(
        self,
        plan: TransmitPlan,
        sections: tuple[PlanSection, ...],
        ctx: ResidualContext,
    ) -> None:
        """The column-restricted twin of :meth:`_execute_stream`.

        Chunks are produced compact (``plan.masks_at`` over the member
        columns — same rng consumption as the full draw), fault-masked
        compact (global-id-keyed transforms), executed on the residual
        kernels, and folded compact through each section's
        ``consume_at`` — with senders translated back to global ids
        first, so protocol state never sees a local index. Accounting
        is identical to the full path: intended masks are False outside
        the members, so compact popcounts *are* the global popcounts.
        """
        network = self.network
        timing = network.phase_timing
        members = ctx.members
        k_r = ctx.k
        chunk = default_stream_chunk(
            max(1, k_r), self._resolved_chunk_steps(k_r)
        )
        stats = network.residual_stats
        use_coo = self._coo_fold_ok(sections)
        base = 0
        for section in sections:
            if section.phase is not None:
                network.trace.enter_phase(section.phase)
            done = 0
            while done < section.width:
                k = min(chunk, section.width - done)
                start = base + done
                t0 = perf_counter()
                intended = np.asarray(
                    plan.masks_at(start, start + k, members)
                )
                timing["coins"] += perf_counter() - t0
                if intended.shape != (k, k_r) or (
                    intended.dtype != np.bool_
                ):
                    raise ProtocolError(
                        f"masks_at produced shape {intended.shape} "
                        f"dtype {intended.dtype} for steps "
                        f"[{start}, {start + k}) over {k_r} members; "
                        f"expected bool ({k}, {k_r})"
                    )
                self._charge(k)
                if use_coo:
                    self._execute_restricted_chunk_coo(
                        intended, ctx, section
                    )
                    stats["restricted_steps"] += k
                    done += k
                    continue
                t0 = perf_counter()
                slab = self._execute_restricted_chunk(intended, ctx)
                timing["deliver"] += perf_counter() - t0
                stats["restricted_steps"] += k
                t0 = perf_counter()
                self._consume_restricted_slab(
                    slab, intended, ctx, section
                )
                timing["commit"] += perf_counter() - t0
                done += k
            base += section.width

    def _execute_restricted_chunk(
        self, intended: np.ndarray, ctx: ResidualContext
    ) -> np.ndarray:
        """Fault transform + kernels + deaf silencing + sender
        translation + accounting for one compact chunk; returns the
        compact hear slab with **global** sender ids."""
        network = self.network
        k = intended.shape[0]
        hear = np.full((k, ctx.k), NO_SENDER, dtype=np.int64)
        fault_state = network._fault_state
        if fault_state is None:
            effective = intended
            receptions = ctx.kernels.execute(
                intended, hear, self.delivery,
                counters=network.kernel_use,
            )
        else:
            effective, deaf = fault_state.transform_window(
                intended, network.steps_elapsed, cols=ctx.members
            )
            receptions = ctx.kernels.execute(
                effective, hear, self.delivery,
                counters=network.kernel_use,
            )
            silenced = deaf & (hear != NO_SENDER)
            n_silenced = int(np.count_nonzero(silenced))
            if n_silenced:
                hear[silenced] = NO_SENDER
                receptions -= n_silenced
                fault_state.note_silenced(n_silenced)
        got = hear != NO_SENDER
        if got.any():
            hear[got] = ctx.members[hear[got]]
        network._account_window(effective, receptions)
        return hear

    def _execute_restricted_chunk_coo(
        self,
        intended: np.ndarray,
        ctx: ResidualContext,
        section: PlanSection,
    ) -> None:
        """Fused (COO) twin of :meth:`_execute_restricted_chunk`.

        Same compact chunk, but: the fault transform mutates the
        intended masks in place, the residual kernels return the
        receptions as a ``(step, local, sender_local)`` triple instead
        of filling a compact hear slab, local ids translate to global
        through ``ctx.members`` (the restricted closure guarantees
        every hearer of a member transmission is itself a member, so
        the compact triple covers *all* receptions — trace totals
        match the full path), and the fold is the section's
        ``consume_coo``. Deaf silencing is point-wise on the global
        ``(step, node)`` pairs — identical drops, identical counters.
        """
        network = self.network
        timing = network.phase_timing
        fault_state = network._fault_state
        k = intended.shape[0]
        t0 = perf_counter()
        if fault_state is not None:
            fault_state.transform_window_inplace(
                intended, network.steps_elapsed, cols=ctx.members
            )
        t1 = perf_counter()
        timing["faults"] += t1 - t0
        mode = "auto" if self.delivery == "pipeline" else self.delivery
        steps, local, senders_local = ctx.kernels.execute_coo(
            intended, mode, counters=network.kernel_use
        )
        nodes = ctx.members[local]
        senders = ctx.members[senders_local]
        receptions = int(steps.size)
        if fault_state is not None and receptions:
            deaf = fault_state.deaf_at(
                steps + network.steps_elapsed, nodes
            )
            dropped = int(np.count_nonzero(deaf))
            if dropped:
                keep = ~deaf
                steps = steps[keep]
                nodes = nodes[keep]
                senders = senders[keep]
                receptions -= dropped
                fault_state.note_silenced(dropped)
        t2 = perf_counter()
        timing["deliver"] += t2 - t1
        network._account_window(intended, receptions)
        section.consume_coo(k, steps, nodes, senders)
        timing["commit"] += perf_counter() - t2

    def _consume_restricted_slab(
        self,
        slab: np.ndarray,
        intended: np.ndarray,
        ctx: ResidualContext,
        section: PlanSection,
    ) -> None:
        """Fold one restricted slab (hook for the validator)."""
        section.consume_at(slab, ctx.members)

    def _consume_stream_slab(
        self,
        slab: np.ndarray,
        masks: np.ndarray,
        consume: Any,
    ) -> None:
        """Fold one executed stream slab (hook for the validator)."""
        consume(slab)

    def run(self, schedule: ProtocolSchedule) -> Any:
        """Execute ``schedule`` to completion and return its result.

        The emitter's ``StopIteration`` value is the protocol result —
        emitters ``return`` it like any generator.

        Wall time spent *inside* the emitter (mask construction,
        protocol state folds between segments) accrues to the
        network's ``phase_timing["plan"]`` bucket; segment execution
        fills the other buckets (streamed windows per stage, decision
        steps and materialized windows as ``"deliver"``).
        """
        timing = self.network.phase_timing
        reply: Any = None
        while True:
            t_plan = perf_counter()
            try:
                segment = schedule.send(reply)
            except StopIteration as stop:
                return stop.value
            finally:
                timing["plan"] += perf_counter() - t_plan
            if isinstance(segment, ObliviousWindow):
                self._charge(segment.masks.shape[0])
                t0 = perf_counter()
                reply = self._execute_window(segment.masks)
                timing["deliver"] += perf_counter() - t0
            elif isinstance(segment, StreamedWindow):
                if segment.consume is None and segment.sections is None:
                    raise ProtocolError(
                        "schedule yielded a StreamedWindow without a "
                        "consume callback; generator-form emitters must "
                        "bind one (plan/commit sources get theirs from "
                        "segment_schedule)"
                    )
                self._execute_stream(segment)
                reply = None
            elif isinstance(segment, DecisionStep):
                self._charge(1)
                t0 = perf_counter()
                reply = self._execute_step(segment.mask)
                timing["deliver"] += perf_counter() - t0
            elif isinstance(segment, TracePhase):
                self.network.trace.enter_phase(segment.name)
                reply = None
            else:
                raise ProtocolError(
                    f"schedule yielded a non-segment: {segment!r}"
                )

    def run_segments(
        self, source: SegmentProtocol, rng: np.random.Generator
    ) -> Any:
        """Drive a plan/commit source to completion on this runner."""
        return self.run(segment_schedule(source, rng))


def run_schedule(
    network: RadioNetwork,
    schedule: ProtocolSchedule,
    max_steps: int | None = None,
    delivery: str = "auto",
    chunk_steps: int | None = None,
    mem_budget: int | None = None,
    restrict: str = "auto",
) -> Any:
    """One-shot convenience: ``WindowedRunner(network, ...).run(...)``."""
    return WindowedRunner(
        network,
        max_steps=max_steps,
        delivery=delivery,
        chunk_steps=chunk_steps,
        mem_budget=mem_budget,
        restrict=restrict,
    ).run(schedule)


def segment_schedule(
    source: SegmentProtocol, rng: np.random.Generator
) -> ProtocolSchedule:
    """Drive a :class:`SegmentProtocol` as a generator-form schedule.

    ``plan`` and ``commit`` alternate with nothing in between — the
    degenerate (single-stream) interleaving, under which the plan/commit
    form is trivially equivalent to the generator form. Returns
    ``source.result()``.

    Streamed windows
    (:class:`~repro.engine.segments.StreamedWindow`) planned without a
    ``consume`` callback — the
    :class:`~repro.engine.streaming.StreamingSegmentProtocol` form —
    have their chunks routed to the source's ``commit(hear_chunk)``,
    one call per executed chunk in step order; no trailing whole-window
    commit follows (there is no materialized reply to deliver).
    """
    while True:
        segment = source.plan(rng)
        if segment is None:
            return source.result()
        if isinstance(segment, TracePhase):
            yield segment
            source.commit(None)
        elif isinstance(segment, StreamedWindow):
            if segment.consume is None and segment.sections is None:
                segment = dataclasses.replace(
                    segment, consume=source.commit
                )
            yield segment
        else:
            reply = yield segment
            source.commit(reply)


def protocol_schedule(
    protocol: Any,
    rng: np.random.Generator,
    steps: int | None = None,
) -> ProtocolSchedule:
    """Adapt a legacy :class:`~repro.radio.protocol.Protocol` object.

    Yields one :class:`DecisionStep` per protocol step (every legacy
    step is conservatively treated as adaptive) until the protocol
    finishes — or for exactly ``steps`` steps, whichever comes first,
    mirroring :func:`repro.radio.protocol.run_steps`. Because the
    adapter calls ``transmit_mask`` and ``observe`` in exactly the
    step-wise drivers' order, running it on a :class:`WindowedRunner`
    is bit-identical to :func:`~repro.radio.protocol.run_steps` on the
    same seed. Returns ``protocol.result()`` when the protocol
    finished, else ``None``.
    """
    if steps is not None and steps < 0:
        raise ProtocolError(f"steps must be >= 0, got {steps}")
    taken = 0
    while not protocol.finished and (steps is None or taken < steps):
        hear_from = yield DecisionStep(protocol.transmit_mask(rng))
        protocol.observe(hear_from)
        taken += 1
    return protocol.result() if protocol.finished else None


class ProtocolSegmentSource(SegmentProtocol):
    """Plan/commit lift of a legacy :class:`~repro.radio.protocol.Protocol`.

    Each ``plan`` call produces the protocol's next transmit mask as a
    width-1 :class:`~repro.engine.segments.ObliviousWindow`; ``commit``
    feeds the delivered ``hear_from`` row to ``observe``. Because plan
    is only ever called at a clean frontier, ``transmit_mask`` and
    ``observe`` run at exactly the causal points the step-wise drivers
    would call them — the same guarantee :func:`protocol_schedule`
    gives, now in the form the :func:`~repro.engine.mux.multiplex`
    combinator can zip.

    Parameters
    ----------
    protocol:
        The protocol to lift.
    steps:
        Optional step bound, mirroring :func:`protocol_schedule`'s
        ``steps``. For a *deterministic-length* protocol, pass its exact
        step count: :meth:`steps_remaining` then reports the exact
        remainder, which is what entitles the multiplexer to batch past
        the reference drivers' per-step termination checks. Passing a
        ``steps`` larger than the protocol's true length is safe only
        outside the multiplexer (the protocol's ``finished`` flag still
        ends the stream, but the remainder estimate goes stale).
    """

    def __init__(self, protocol: Any, steps: int | None = None) -> None:
        super().__init__(protocol.n)
        if steps is not None and steps < 0:
            raise ProtocolError(f"steps must be >= 0, got {steps}")
        self.protocol = protocol
        self.steps = steps
        self._planned = 0
        self._awaiting_commit = False

    def plan(self, rng: np.random.Generator) -> ObliviousWindow | None:
        if self._awaiting_commit:
            raise ProtocolError(
                "ProtocolSegmentSource.plan() before the previous step "
                "was committed"
            )
        if self.protocol.finished or (
            self.steps is not None and self._planned >= self.steps
        ):
            return None
        mask = self.protocol.transmit_mask(rng)
        self._planned += 1
        self._awaiting_commit = True
        return ObliviousWindow(np.asarray(mask)[None, :])

    def commit(self, reply: np.ndarray) -> None:
        if not self._awaiting_commit:
            raise ProtocolError(
                "ProtocolSegmentSource.commit() without a planned step"
            )
        self.protocol.observe(reply[0])
        self._awaiting_commit = False

    def steps_remaining(self) -> int | None:
        if self.protocol.finished:
            return 0
        if self.steps is not None:
            return self.steps - self._planned
        return None

    def result(self) -> Any:
        return self.protocol.result() if self.protocol.finished else None


__all__ = [
    "DELIVERY_MODES",
    "ProtocolSegmentSource",
    "WindowedRunner",
    "protocol_schedule",
    "run_schedule",
    "segment_schedule",
]
