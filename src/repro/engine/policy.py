"""Execution policy: the one object that carries every engine knob.

Four PRs of engine growth left each protocol entry point threading its
own copy of ``engine=``, ``delivery=``, ``chunk_steps=``, and
``mem_budget=`` keyword arguments, and every consumer (CLI, experiment
harness, benchmarks, the validating runner) re-parsing them
independently. :class:`ExecutionPolicy` replaces that: a frozen record
of *how* to execute a protocol — which engine variant, which window
delivery strategy, how to stream, whether to interpose the contract
checker, and which trace grade to record — that travels as one value
through :func:`repro.api.run`, the CLI's shared flag group, and
``run_trials*``.

Every knob here is a **performance or diagnostics knob, never a
semantics knob**: seeded protocol results are bit-identical whatever
policy executes them (the engine equivalence suites and the
:class:`~repro.engine.validate.ValidatingRunner` pin exactly that).

Refusals are uniform by construction: unknown ``engine``/``delivery``
strings and malformed ``chunk_steps``/``mem_budget`` values raise
:class:`~repro.radio.errors.ProtocolError` naming the accepted values,
from one shared set of validators — the API, the CLI (via thin argparse
wrappers), and the experiment harness all refuse the same way.

This module lives in the engine layer (below :mod:`repro.core`) so core
entry points can accept policies without an import cycle; its public
home is :mod:`repro.api`.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any

import numpy as np

from ..faults.schedule import FaultSchedule, default_faults, validate_faults
from ..radio.errors import ProtocolError
from ..radio.network import RadioNetwork
from .kernels import (
    ALL_DELIVERY_MODES,
    available_delivery_modes,
    require_delivery_mode,
)
from .residual import RESTRICT_MODES, validate_restrict
from .streaming import memory_budget, resolve_chunk_steps

#: Every engine variant any protocol accepts. ``"auto"`` defers to the
#: protocol's default (the fastest correct path); individual protocols
#: accept a subset (e.g. only ICP and packet Compete support
#: ``"fused"``) and refuse the rest by name.
ENGINE_MODES = ("auto", "windowed", "reference", "fused")

#: Trace grades: ``"default"`` records per-phase transmission/reception
#: detail (:class:`~repro.radio.trace.StepTrace`); ``"cheap"`` keeps
#: only step totals (:class:`~repro.radio.trace.CheapTrace`) for bulk
#: workloads. A trace grade changes what is *recorded*, never what is
#: executed.
TRACE_MODES = ("default", "cheap")

#: Suffix multipliers accepted by :func:`parse_mem_budget`.
_MEM_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def validate_engine(
    engine: str, allowed: tuple[str, ...] = ENGINE_MODES
) -> str:
    """Check an engine name against ``allowed``, naming the options.

    Raises :class:`~repro.radio.errors.ProtocolError` (also a
    ``ValueError``) on anything else — the one refusal every layer
    (API, CLI, ``run_trials*``) shares.
    """
    if engine not in allowed:
        raise ProtocolError(
            f"unknown engine: {engine!r} (expected one of {allowed})"
        )
    return engine


def validate_delivery(delivery: str) -> str:
    """Check a window delivery mode, naming the accepted values.

    Beyond the always-available numpy strategies
    (:data:`~repro.radio.network.DELIVERY_MODES`), the compiled
    backends ``"numba"`` and ``"cupy"`` are accepted exactly when their
    optional dependency is importable and usable — an explicit request
    for an absent backend refuses by name, listing the installed
    alternatives (:func:`~repro.engine.kernels.available_delivery_modes`);
    ``"auto"`` is the only mode that silently adapts.
    """
    return require_delivery_mode(delivery)


def validate_chunk_steps(chunk_steps: int | None) -> int | None:
    """Check a streamed slab height (``None`` = unset).

    Python and numpy integers both pass (slab heights computed with
    numpy arithmetic are natural in this codebase); booleans and
    everything else refuse.
    """
    if chunk_steps is None:
        return None
    if isinstance(chunk_steps, bool) or not isinstance(
        chunk_steps, (int, np.integer)
    ):
        raise ProtocolError(
            f"chunk_steps must be a positive integer or None, "
            f"got {chunk_steps!r}"
        )
    if chunk_steps < 1:
        raise ProtocolError(
            f"chunk_steps must be >= 1, got {chunk_steps}"
        )
    return int(chunk_steps)


def validate_mem_budget(mem_budget: int | None) -> int | None:
    """Check a peak-memory target in bytes (``None`` = unset).

    Python and numpy integers both pass; booleans and everything else
    refuse.
    """
    if mem_budget is None:
        return None
    if isinstance(mem_budget, bool) or not isinstance(
        mem_budget, (int, np.integer)
    ):
        raise ProtocolError(
            f"mem_budget must be a positive byte count or None, "
            f"got {mem_budget!r} (strings like '64M' go through "
            f"parse_mem_budget)"
        )
    if mem_budget < 1:
        raise ProtocolError(
            f"mem_budget must be >= 1 byte, got {mem_budget}"
        )
    return int(mem_budget)


def validate_trace(trace: str) -> str:
    """Check a trace grade, naming the accepted values."""
    if trace not in TRACE_MODES:
        raise ProtocolError(
            f"unknown trace mode: {trace!r} "
            f"(expected one of {TRACE_MODES})"
        )
    return trace


def parse_mem_budget(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (e.g. ``"64M"``).

    The one parser behind every surface that accepts textual budgets
    (the CLI's ``--mem-budget``, policy construction from strings).
    Raises :class:`~repro.radio.errors.ProtocolError` on malformed
    input, naming the accepted form.
    """
    original = text
    text = text.strip()
    scale = 1
    if text and text[-1].lower() in _MEM_SUFFIXES:
        scale = _MEM_SUFFIXES[text[-1].lower()]
        text = text[:-1]
    try:
        value = int(text) * scale
    except ValueError:
        raise ProtocolError(
            f"malformed memory budget {original!r}: expected bytes with "
            f"an optional K/M/G suffix (e.g. 64M)"
        ) from None
    return validate_mem_budget(value)


@dataclasses.dataclass(frozen=True)
class ExecutionPolicy:
    """How to execute a protocol — every engine knob as one frozen value.

    Attributes
    ----------
    engine:
        ``"auto"`` (default) picks the protocol's fastest verified
        path; ``"windowed"`` forces the batched engine,
        ``"reference"`` the retained step-wise twin, ``"fused"`` the
        window-multiplexed path where one exists. Protocols refuse
        engines they do not implement, naming the ones they do.
    delivery:
        Window execution strategy (``"auto"``/``"sparse"``/
        ``"dense"``), forwarded to
        :meth:`~repro.radio.network.RadioNetwork.deliver_window`.
    chunk_steps, mem_budget:
        The streaming knobs: slab height directly, or derived from a
        peak-bytes target through the
        :data:`~repro.engine.streaming.STREAM_CELL_BYTES` cost model.
        With neither set, :meth:`resolve` folds in the process-wide
        default budget
        (:func:`~repro.engine.streaming.set_memory_budget`).
    validate:
        Interpose the contract-checking
        :class:`~repro.engine.validate.ValidatingRunner` — every
        window re-executed step-wise and through the forced strategies
        on shadow networks, asserting bit-identical delivery. A
        diagnostics knob (slow; results are unchanged by construction).
    trace:
        Trace grade for networks the executor constructs:
        ``"default"`` (full :class:`~repro.radio.trace.StepTrace`) or
        ``"cheap"`` (totals only). Networks the caller built keep the
        trace they were built with.
    restrict:
        Active-set restriction mode for streamed plans that declare a
        transmit support (``"auto"``/``"off"``/``"force"``, see
        :mod:`repro.engine.residual`). ``"auto"`` (default) switches to
        residual-graph delivery when the live set is small enough to
        pay; ``"off"`` never restricts; ``"force"`` restricts whenever
        a plan allows it (equivalence tests pin the restricted path
        with it). A performance knob: results are bit-identical either
        way.
    faults:
        A :class:`~repro.faults.FaultSchedule` to install on the
        network the run executes over (``None`` = unset; :meth:`resolve`
        folds in the process-wide default,
        :func:`~repro.faults.set_default_faults`). The **one semantics
        knob** on the policy, by design: faults change what the channel
        commits — but deterministically, identically under every
        engine, and an *empty* schedule is bit-identical to ``None``.

    All other knobs are performance/diagnostics knobs — seeded results
    are bit-identical under every policy with the same effective fault
    schedule. Validation happens at construction, so an
    ``ExecutionPolicy`` that exists is well-formed.
    """

    engine: str = "auto"
    delivery: str = "auto"
    chunk_steps: int | None = None
    mem_budget: int | None = None
    validate: bool = False
    trace: str = "default"
    faults: FaultSchedule | None = None
    restrict: str = "auto"

    def __post_init__(self) -> None:
        validate_engine(self.engine)
        validate_delivery(self.delivery)
        validate_chunk_steps(self.chunk_steps)
        validate_mem_budget(self.mem_budget)
        validate_trace(self.trace)
        validate_faults(self.faults)
        validate_restrict(self.restrict)

    def engine_for(
        self, allowed: tuple[str, ...], default: str
    ) -> str:
        """Resolve ``"auto"`` to a protocol's default engine.

        ``allowed`` is the protocol's accepted engine set (without
        ``"auto"``); anything else is refused by name. ``validate``
        combined with the reference engine also refuses: the
        step-wise reference builds no runner, so the contract checker
        could not interpose — an inert knob is refused, never
        silently dropped.
        """
        engine = (
            default
            if self.engine == "auto"
            else validate_engine(self.engine, allowed)
        )
        if engine == "reference" and self.validate:
            raise ProtocolError(
                "validate=True re-executes engine windows through the "
                "contract checker, but engine='reference' runs the "
                "step-wise specification with no windows to check; "
                "drop validate or use the windowed/fused engine"
            )
        return engine

    def resolve(self, n: int | None = None) -> "ExecutionPolicy":
        """Fold in the process-wide defaults; return the effective policy.

        The returned policy is what a run actually executes under — and
        what :class:`~repro.api.report.RunReport` echoes back:

        * ``mem_budget`` falls back to the process-wide default budget
          (:func:`~repro.engine.streaming.memory_budget`) when unset
          and no explicit ``chunk_steps`` overrides it;
        * ``chunk_steps``, when ``n`` is known, is resolved from the
          budget through the cost model (an explicit ``chunk_steps``
          always wins — the same precedence
          :func:`~repro.engine.streaming.resolve_chunk_steps` applies
          everywhere);
        * ``faults`` falls back to the process-wide default schedule
          (:func:`~repro.faults.default_faults`) when unset — the
          mechanism ``run_trials*`` uses to impose one fault
          environment across a whole trial matrix.

        Resolution is idempotent: resolving a resolved policy is a
        no-op.
        """
        chunk = self.chunk_steps
        budget = self.mem_budget
        if chunk is None and budget is None:
            budget = memory_budget()
        if chunk is None and n is not None:
            chunk = resolve_chunk_steps(n, None, budget)
        faults = self.faults if self.faults is not None else default_faults()
        if (
            chunk == self.chunk_steps
            and budget == self.mem_budget
            and faults is self.faults
        ):
            return self
        return dataclasses.replace(
            self, chunk_steps=chunk, mem_budget=budget, faults=faults
        )

    def fault_schedule(self):
        """The effective fault schedule: this policy's, or the
        process-wide default (:func:`~repro.faults.default_faults`)
        when unset; ``None`` when neither exists."""
        return self.faults if self.faults is not None else default_faults()

    def bind(self, network: RadioNetwork | None) -> RadioNetwork | None:
        """Install this policy's effective fault schedule on ``network``.

        The one call every migrated protocol entry point makes before
        executing: a no-op without a schedule (or without a network),
        idempotent for an equal schedule, and a refusal if the network
        already carries a different one. Returns ``network``.
        """
        if network is not None:
            schedule = self.fault_schedule()
            if schedule is not None:
                network.install_faults(schedule)
        return network

    def make_trace(self):
        """A fresh trace object of this policy's grade."""
        from ..radio.trace import CheapTrace, StepTrace

        return CheapTrace() if self.trace == "cheap" else StepTrace()

    def runner(
        self, network: RadioNetwork, max_steps: int | None = None
    ):
        """Build the runner this policy prescribes for ``network``.

        A plain :class:`~repro.engine.runner.WindowedRunner`, or the
        contract-checking
        :class:`~repro.engine.validate.ValidatingRunner` when
        :attr:`validate` is set; either way carrying this policy's
        delivery and streaming knobs.
        """
        from .runner import WindowedRunner

        self.bind(network)
        if self.validate:
            from .validate import ValidatingRunner

            cls: type[WindowedRunner] = ValidatingRunner
        else:
            cls = WindowedRunner
        return cls(
            network,
            max_steps=max_steps,
            delivery=self.delivery,
            chunk_steps=self.chunk_steps,
            mem_budget=self.mem_budget,
            restrict=self.restrict,
        )

    def run_schedule(
        self,
        network: RadioNetwork,
        schedule,
        max_steps: int | None = None,
    ):
        """Execute a schedule under this policy (one-shot runner)."""
        return self.runner(network, max_steps=max_steps).run(schedule)


# ---------------------------------------------------------------------------
# Legacy-kwarg deprecation shims.
# ---------------------------------------------------------------------------

#: Entry points that already warned about legacy kwargs this process
#: (the "warning emitted once" contract; tests clear it to re-assert).
_warned_legacy: set[str] = set()


def legacy_policy(
    policy: ExecutionPolicy | None,
    entry: str,
    **kwargs: Any,
) -> ExecutionPolicy:
    """Fold legacy per-call kwargs into an :class:`ExecutionPolicy`.

    The shim behind every migrated entry point: callers that pass the
    old ``engine=``/``delivery=``/``chunk_steps=``/``mem_budget=``
    keywords get a policy constructed from them (with one
    ``DeprecationWarning`` per entry point per process), callers that
    pass ``policy=`` use it directly, and passing both refuses loudly —
    a silent merge would make precedence ambiguous.

    ``kwargs`` holds the legacy values with ``None`` meaning "not
    given" (the migrated signatures' defaults); the constructed policy
    is bit-identical in effect to the old kwargs, so old and new call
    forms produce identical runs (pinned by
    ``tests/test_api.py``).
    """
    given = {k: v for k, v in kwargs.items() if v is not None}
    if policy is not None:
        if given:
            raise ProtocolError(
                f"{entry}() got both policy= and legacy keyword(s) "
                f"{sorted(given)}; pass the policy alone "
                f"(dataclasses.replace() to override fields)"
            )
        return policy
    if given and entry not in _warned_legacy:
        _warned_legacy.add(entry)
        warnings.warn(
            f"{entry}(): per-call {sorted(given)} keywords are "
            f"deprecated; pass policy=ExecutionPolicy(...) (see "
            f"repro.api)",
            DeprecationWarning,
            stacklevel=3,
        )
    return ExecutionPolicy(**given)


__all__ = [
    "ALL_DELIVERY_MODES",
    "ENGINE_MODES",
    "ExecutionPolicy",
    "RESTRICT_MODES",
    "TRACE_MODES",
    "available_delivery_modes",
    "legacy_policy",
    "parse_mem_budget",
    "validate_chunk_steps",
    "validate_delivery",
    "validate_engine",
    "validate_mem_budget",
    "validate_restrict",
    "validate_trace",
]
