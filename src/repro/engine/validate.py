"""The contract-checking harness for the windowed engine.

The engine's speed rests on one promise: executing an
:class:`~repro.engine.segments.ObliviousWindow` as a batched matrix
product — sparse, dense, or a per-row mix — returns exactly what ``w``
sequential :meth:`~repro.radio.network.RadioNetwork.deliver` calls
would have. :class:`ValidatingRunner` turns that promise into a runtime
assertion: it executes schedules normally on its primary network while
*replaying* every window step-by-step through ``deliver`` on a shadow
network over the same graph, and re-executing it on two more shadows
through the forced-sparse and forced-dense strategies — plus the raw
sparse matrix product directly, since the public sparse strategy
routes narrow windows to the gather kernel. Any disagreement — a
single ``hear_from`` bit anywhere in the cross-comparison — raises
:class:`ObliviousnessViolationError` naming the first divergent step.

``tests/test_schedule_contract.py`` drives every in-tree schedule
emitter through this runner across the pipeline's graph families, so
the windows being checked are the ones real protocols actually emit
(mask distributions from Decay ladders, slot schedules, density
guesses), not synthetic ones. The harness is shipped, not test-only:
wrap any run in it when debugging a suspected engine/emitter mismatch.
"""

from __future__ import annotations

import numpy as np

from ..radio.errors import ProtocolError
from ..radio.network import GATHER_WINDOW_WIDTH, NO_SENDER, RadioNetwork
from ..radio.trace import CheapTrace
from .runner import WindowedRunner


class ObliviousnessViolationError(ProtocolError):
    """A batched window diverged from its step-by-step replay."""


class ValidatingRunner(WindowedRunner):
    """A :class:`~repro.engine.runner.WindowedRunner` that re-executes
    every window step-by-step and asserts bit-identical delivery.

    Parameters are those of :class:`~repro.engine.runner.WindowedRunner`;
    three shadow networks over ``network.graph`` are constructed
    internally (cheap: the CSR adjacency is shared through the
    per-graph context cache): one replaying every window through
    sequential :meth:`~repro.radio.network.RadioNetwork.deliver` calls,
    and one each forcing the sparse and dense window strategies.
    Shadows carry :class:`~repro.radio.trace.CheapTrace`; the primary
    network's trace and step accounting are exactly those of an
    unvalidated run.

    Attributes
    ----------
    windows_checked, steps_checked:
        Running totals of validated window segments and radio steps,
        so tests can assert the harness actually exercised something.
    """

    def __init__(
        self,
        network: RadioNetwork,
        max_steps: int | None = None,
        delivery: str = "auto",
        chunk_steps: int | None = None,
        mem_budget: int | None = None,
        restrict: str = "auto",
    ) -> None:
        super().__init__(
            network,
            max_steps=max_steps,
            delivery=delivery,
            chunk_steps=chunk_steps,
            mem_budget=mem_budget,
            restrict=restrict,
        )
        self.shadow_step = RadioNetwork(network.graph, trace=CheapTrace())
        self.shadow_sparse = RadioNetwork(network.graph, trace=CheapTrace())
        self.shadow_dense = RadioNetwork(network.graph, trace=CheapTrace())
        if network._fault_state is not None:
            # Under an active fault schedule the shadows must realize
            # the identical fault pattern: each gets a clone of the
            # primary's current state (same energy ledger) and starts
            # on the primary's global step clock, then advances in
            # lockstep — every window the primary executes is replayed
            # on every shadow.
            for shadow in (
                self.shadow_step, self.shadow_sparse, self.shadow_dense
            ):
                shadow.faults = network.faults
                shadow._fault_state = network._fault_state.clone()
                shadow.steps_elapsed = network.steps_elapsed
        self.windows_checked = 0
        self.steps_checked = 0

    def _compare(
        self,
        primary: np.ndarray,
        masks: np.ndarray,
    ) -> None:
        """Cross-compare one window's delivery results: the primary
        against the step replay, both sparse kernels, and the dense
        matmul."""
        if masks.shape[0] == 0:
            replay = np.empty((0, self.network.n), dtype=np.int64)
        else:
            replay = np.stack(
                [self.shadow_step.deliver(m) for m in masks]
            )
        alternates = [
            ("step replay", replay),
            ("sparse", self.shadow_sparse.deliver_window(masks, "sparse")),
            ("dense", self.shadow_dense.deliver_window(masks, "dense")),
        ]
        if masks.shape[0] <= GATHER_WINDOW_WIDTH:
            # At these widths the public "sparse" strategy routed to
            # the gather kernel, so the sparse matrix product is run
            # directly too — otherwise the width-1/width-2 joint
            # windows the multiplexed paths emit would never
            # cross-check it. (Wider windows already executed it as
            # their "sparse" leg.)
            spmm = np.full(
                masks.shape, -1, dtype=np.int64
            )  # NO_SENDER fill, kernels only write heard cells
            if (
                self.shadow_sparse._fault_state is not None
                and masks.shape[0] > 0
            ):
                # The raw product bypasses the network-level fault
                # transforms, so feed it the effective masks the sparse
                # shadow just committed for this window and apply the
                # hear transform by hand — checking the kernel under
                # exactly the channel the faulted run saw.
                effective, deaf = self.shadow_sparse._fault_window
                self.shadow_sparse._deliver_window_spmm(effective, spmm)
                spmm[deaf] = -1
            else:
                self.shadow_sparse._deliver_window_spmm(masks, spmm)
            alternates.append(("sparse product", spmm))
        for name, other in alternates:
            if primary.shape != other.shape:
                raise ObliviousnessViolationError(
                    f"window delivery shape {primary.shape} != "
                    f"{name} shape {other.shape}"
                )
            if not (primary == other).all():
                step, node = (
                    int(i) for i in np.argwhere(primary != other)[0]
                )
                raise ObliviousnessViolationError(
                    f"window of {masks.shape[0]} steps diverged from "
                    f"its {name} at window step {step}, node {node}: "
                    f"hear_from {primary[step, node]} != "
                    f"{other[step, node]}"
                )

    def _coo_fold_ok(self, sections) -> bool:
        """Pin the slab paths: the validator's replay machinery
        compares full and compact hear slabs, which the fused COO
        pipeline never materializes. The pipeline is validated by its
        own equivalence suite (tests/test_pipeline.py) against the
        slab paths this runner certifies."""
        return False

    def _execute_window(self, masks: np.ndarray) -> np.ndarray:
        batched = super()._execute_window(masks)
        self._compare(batched, masks)
        self.windows_checked += 1
        self.steps_checked += masks.shape[0]
        return batched

    def _consume_stream_slab(self, slab, masks, consume) -> None:
        """Cross-check one executed stream slab before folding it.

        Streamed windows run through the base runner's single streaming
        loop (production plan-contract validation, charge ordering, and
        accounting); this hook interposes the step-replay and
        forced-strategy comparisons per slab, using the masks the loop
        stashed (plans are one-shot — their lazy coin draws cannot be
        replayed).
        """
        self._compare(slab, masks)
        self.windows_checked += 1
        self.steps_checked += slab.shape[0]
        consume(slab)

    def _consume_restricted_slab(self, slab, intended, ctx, section) -> None:
        """Cross-check one restricted slab before folding it.

        The compact slab is expanded back to full width — intended
        masks are False and receptions absent outside the member
        columns by the residual support invariant — and compared
        against the step replay and both forced full-width strategies.
        This is the direct assertion that active-set restriction (and
        its interplay with an installed fault schedule) realizes
        exactly the unrestricted channel.
        """
        n = self.network.n
        members = ctx.members
        full_masks = np.zeros((intended.shape[0], n), dtype=bool)
        full_masks[:, members] = intended
        full_slab = np.full(
            (slab.shape[0], n), NO_SENDER, dtype=np.int64
        )
        full_slab[:, members] = slab
        self._compare(full_slab, full_masks)
        self.windows_checked += 1
        self.steps_checked += slab.shape[0]
        section.consume_at(slab, members)

    def _execute_step(self, mask: np.ndarray) -> np.ndarray:
        hear_from = super()._execute_step(mask)
        self._compare(hear_from[None, :], np.asarray(mask)[None, :])
        self.steps_checked += 1
        return hear_from


__all__ = ["ObliviousnessViolationError", "ValidatingRunner"]
