"""Active-set-restricted (residual-graph) delivery contexts.

Late rounds of Radio MIS run on a few percent of the graph — decided
nodes are inactive, crashed nodes are silent — yet the windowed engine
still pays O(n) per step: full-width coin draws, full-width fault
masks, kernels over the full adjacency. A :class:`ResidualContext`
is the compact world the runner switches into when a streamed plan
declares its **support** (the global mask of every possible
transmitter): the member set is the support plus its one-hop
neighborhood, the adjacency is the induced sub-CSR
(:meth:`~repro.graphs.context.GraphContext.induced_csr`), and delivery
runs through :class:`~repro.engine.kernels.DeliveryKernels` bound to
that sub-graph — with degree-dependent routing state recomputed from
the residual degrees, never inherited.

Exactness: with transmitters confined to the support, every reception
and every collision in the full graph happens between members —
a non-member has no transmitting neighbor, so it hears silence in both
worlds. Coins come from the plan's ``masks_at`` producer
(:class:`~repro.engine.pcg.CoinField`), which consumes the rng stream
exactly as the full draw would; fault transforms run column-restricted
but keyed on global ids (:meth:`~repro.faults.state.FaultState
.transform_window`). Results, steps, per-phase trace totals, realized
fault counters, and the final rng state are therefore bit-identical to
the unrestricted path — the property ``tests/test_residual.py`` and
the differential-fuzz twins pin.

Amortization: contexts are rebuilt only when the live set shrinks
enough to matter (`the live fraction halves`, per ISSUE 7) and reused
while the current support stays inside the cached member set — a
cached context stays *correct* for any subset support, so reuse is a
pure performance choice.
"""

from __future__ import annotations

import numpy as np

from ..radio.errors import ProtocolError
from .kernels import DeliveryKernels

#: Restriction knob values accepted by :class:`ExecutionPolicy` and the
#: runners: ``"auto"`` restricts when profitable, ``"off"`` never
#: restricts, ``"force"`` restricts whenever a plan allows it
#: (equivalence tests use this to pin the restricted path at any scale).
RESTRICT_MODES = ("auto", "off", "force")

#: ``auto`` considers restriction once the live fraction is at or below
#: this — above it, the one-hop closure is essentially the whole graph.
RESTRICT_LIVE_FRACTION = 0.5

#: ``auto`` declines a context whose member set still exceeds this
#: fraction of ``n``. Above it, the compacted masks/kernels/buffers no
#: longer shrink enough to pay for the restriction bookkeeping — and
#: the coins are already at full price there (column sets wider than
#: ``n / OFFSET_COST_FACTOR`` take the draw-and-slice path).
RESIDUAL_MAX_FRACTION = 0.5

#: A cached context is rebuilt when the live count falls below this
#: fraction of the live count it was built at ("live fraction halves").
REBUILD_FACTOR = 0.5


def validate_restrict(restrict: str) -> None:
    """Refuse unknown restriction modes (policy validator)."""
    if restrict not in RESTRICT_MODES:
        raise ProtocolError(
            f"unknown restrict mode: {restrict!r} "
            f"(expected one of {RESTRICT_MODES})"
        )


class ResidualContext:
    """The compact execution world induced by one support mask.

    Parameters
    ----------
    network:
        The full :class:`~repro.radio.RadioNetwork`.
    support:
        Global length-``n`` bool mask of every node that may transmit
        under plans executed in this context.

    Attributes
    ----------
    members:
        Sorted global ids of the residual world: the support and its
        one-hop neighborhood. Every transmitter and every possible
        hearer of one is a member.
    k:
        Member count (the restricted column width).
    kernels:
        :class:`~repro.engine.kernels.DeliveryKernels` over the induced
        sub-CSR, degrees recomputed from it.
    support_mask:
        The support this context was built from; :meth:`covers` checks
        later supports against it.
    live_at_build:
        Support popcount at build time (rebuild amortization).
    """

    def __init__(self, network, support: np.ndarray) -> None:
        support = np.asarray(support, dtype=bool)
        if support.shape != (network.n,):
            raise ProtocolError(
                f"residual support has shape {support.shape}, "
                f"expected ({network.n},)"
            )
        # One-hop closure via a single spmv: reach > 0 exactly at nodes
        # with at least one supported neighbor.
        reach = network._adj @ support.astype(np.float64)
        member_mask = support | (reach > 0.0)
        self.members = np.nonzero(member_mask)[0].astype(np.int64)
        self.k = int(self.members.size)
        sub_indptr, sub_indices = network._context.induced_csr(
            self.members
        )
        self.kernels = DeliveryKernels(sub_indptr, sub_indices, self.k)
        self.support_mask = support.copy()
        self.live_at_build = int(support.sum())

    def covers(self, support: np.ndarray) -> bool:
        """Whether ``support`` is a subset of the build-time support —
        the condition under which this context is still exact for a
        newer plan (members already contain the new transmitters and
        all their neighbors)."""
        return not bool(np.any(support & ~self.support_mask))


__all__ = [
    "REBUILD_FACTOR",
    "RESIDUAL_MAX_FRACTION",
    "RESTRICT_LIVE_FRACTION",
    "RESTRICT_MODES",
    "ResidualContext",
    "validate_restrict",
]
