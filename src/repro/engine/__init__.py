"""The unified windowed protocol engine (the scheduler layer).

Packet-level protocols in this package no longer drive
:meth:`repro.radio.network.RadioNetwork.deliver` one step at a time.
Instead each protocol is a *schedule emitter*: a generator that yields a
stream of :mod:`segments <repro.engine.segments>` —

* :class:`~repro.engine.segments.ObliviousWindow` — a block of radio
  steps whose transmit masks are all fixed before the first of them
  executes (Decay sweeps, EstimateEffectiveDegree levels, round-robin
  rotations, background blocks);
* :class:`~repro.engine.segments.DecisionStep` — a single step whose
  mask may depend on everything heard so far (slot-schedule passes,
  marking decisions);
* :class:`~repro.engine.segments.TracePhase` — a trace-attribution
  switch (no radio step).

and the :class:`~repro.engine.runner.WindowedRunner` executes the
stream: oblivious windows through the batched, density-routed
:meth:`~repro.radio.network.RadioNetwork.deliver_window` product,
decision points through the fused single-step
:meth:`~repro.radio.network.RadioNetwork.deliver` path. The runner
preserves the exact rng stream, ``steps_elapsed`` count, and trace
totals of the step-wise loops it replaces — the contract every
``*_reference`` implementation, ``tests/test_engine_windowed.py``, and
the :mod:`repro.engine.validate` harness pin down (see DESIGN.md, "The
engine layer").

On top of the generator form sits the *plan/commit* form
(:class:`~repro.engine.segments.SegmentProtocol`): planning the next
segment and committing the previous segment's receptions are separate
calls, which is what lets the :func:`~repro.engine.mux.multiplex`
combinator zip protocols' planned windows into joint oblivious
windows — how ICP's time-multiplexed Decay background runs fused
instead of step-at-a-time.

Orthogonal to both forms is *streaming* execution
(:mod:`repro.engine.streaming`): a window too wide to materialize is
carried as a :class:`~repro.engine.segments.StreamedWindow` — a lazy
:class:`~repro.radio.network.TransmitPlan` plus a per-chunk fold — and
the runner executes it through
:meth:`~repro.radio.network.RadioNetwork.deliver_window_chunks` in
``(chunk_steps, n)`` slabs, with the slab height derived from a peak-
memory budget. Bit-identical to the monolithic path on shared seeds;
peak memory becomes a tunable instead of a function of ``w * n``, which
is what makes ``n >= 10^5`` runs practical (DESIGN.md, "Streaming
windows").
"""

from .kernels import (
    ALL_DELIVERY_MODES,
    COMPILED_DELIVERY_MODES,
    DeliveryKernels,
    available_delivery_modes,
    compiled_kernel_name,
    require_delivery_mode,
)
from .mux import multiplex
from .pcg import CoinField
from .policy import (
    ENGINE_MODES,
    ExecutionPolicy,
    TRACE_MODES,
    legacy_policy,
    parse_mem_budget,
)
from .residual import RESTRICT_MODES, ResidualContext
from .runner import (
    DELIVERY_MODES,
    ProtocolSegmentSource,
    WindowedRunner,
    protocol_schedule,
    run_schedule,
    segment_schedule,
)
from .segments import (
    COIN_BUDGET,
    DecisionStep,
    ObliviousWindow,
    PlanSection,
    ProtocolSchedule,
    ScheduleSegmentAdapter,
    Segment,
    SegmentProtocol,
    StreamedWindow,
    TracePhase,
    coin_chunk,
)
from .streaming import (
    STREAM_CELL_BYTES,
    StreamedCommitAdapter,
    StreamingSegmentProtocol,
    chunk_steps_for_budget,
    memory_budget,
    resolve_chunk_steps,
    set_memory_budget,
)
from .validate import ObliviousnessViolationError, ValidatingRunner

__all__ = [
    "ALL_DELIVERY_MODES",
    "COIN_BUDGET",
    "COMPILED_DELIVERY_MODES",
    "CoinField",
    "DELIVERY_MODES",
    "DeliveryKernels",
    "ENGINE_MODES",
    "DecisionStep",
    "ExecutionPolicy",
    "PlanSection",
    "RESTRICT_MODES",
    "ResidualContext",
    "TRACE_MODES",
    "ObliviousnessViolationError",
    "ObliviousWindow",
    "ProtocolSchedule",
    "ProtocolSegmentSource",
    "STREAM_CELL_BYTES",
    "ScheduleSegmentAdapter",
    "Segment",
    "SegmentProtocol",
    "StreamedCommitAdapter",
    "StreamedWindow",
    "StreamingSegmentProtocol",
    "TracePhase",
    "ValidatingRunner",
    "WindowedRunner",
    "available_delivery_modes",
    "chunk_steps_for_budget",
    "coin_chunk",
    "compiled_kernel_name",
    "legacy_policy",
    "memory_budget",
    "multiplex",
    "parse_mem_budget",
    "protocol_schedule",
    "require_delivery_mode",
    "resolve_chunk_steps",
    "run_schedule",
    "segment_schedule",
    "set_memory_budget",
]
