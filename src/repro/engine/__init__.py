"""The unified windowed protocol engine (the scheduler layer).

Packet-level protocols in this package no longer drive
:meth:`repro.radio.network.RadioNetwork.deliver` one step at a time.
Instead each protocol is a *schedule emitter*: a generator that yields a
stream of :mod:`segments <repro.engine.segments>` —

* :class:`~repro.engine.segments.ObliviousWindow` — a block of radio
  steps whose transmit masks are all fixed before the first of them
  executes (Decay sweeps, EstimateEffectiveDegree levels, round-robin
  rotations, background blocks);
* :class:`~repro.engine.segments.DecisionStep` — a single step whose
  mask may depend on everything heard so far (slot-schedule passes,
  marking decisions);
* :class:`~repro.engine.segments.TracePhase` — a trace-attribution
  switch (no radio step).

and the :class:`~repro.engine.runner.WindowedRunner` executes the
stream: oblivious windows through the batched, density-routed
:meth:`~repro.radio.network.RadioNetwork.deliver_window` product,
decision points through the fused single-step
:meth:`~repro.radio.network.RadioNetwork.deliver` path. The runner
preserves the exact rng stream, ``steps_elapsed`` count, and trace
totals of the step-wise loops it replaces — the contract every
``*_reference`` implementation, ``tests/test_engine_windowed.py``, and
the :mod:`repro.engine.validate` harness pin down (see DESIGN.md, "The
engine layer").

On top of the generator form sits the *plan/commit* form
(:class:`~repro.engine.segments.SegmentProtocol`): planning the next
segment and committing the previous segment's receptions are separate
calls, which is what lets the :func:`~repro.engine.mux.multiplex`
combinator zip two protocols' planned windows into joint oblivious
windows — how ICP's time-multiplexed Decay background runs fused
instead of step-at-a-time.
"""

from .mux import multiplex
from .runner import (
    DELIVERY_MODES,
    ProtocolSegmentSource,
    WindowedRunner,
    protocol_schedule,
    run_schedule,
    segment_schedule,
)
from .segments import (
    COIN_BUDGET,
    DecisionStep,
    ObliviousWindow,
    ProtocolSchedule,
    ScheduleSegmentAdapter,
    Segment,
    SegmentProtocol,
    TracePhase,
    coin_chunk,
)
from .validate import ObliviousnessViolationError, ValidatingRunner

__all__ = [
    "COIN_BUDGET",
    "DELIVERY_MODES",
    "DecisionStep",
    "ObliviousnessViolationError",
    "ObliviousWindow",
    "ProtocolSchedule",
    "ProtocolSegmentSource",
    "ScheduleSegmentAdapter",
    "Segment",
    "SegmentProtocol",
    "TracePhase",
    "ValidatingRunner",
    "WindowedRunner",
    "coin_chunk",
    "multiplex",
    "protocol_schedule",
    "run_schedule",
    "segment_schedule",
]
