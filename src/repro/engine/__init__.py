"""The unified windowed protocol engine (the scheduler layer).

Packet-level protocols in this package no longer drive
:meth:`repro.radio.network.RadioNetwork.deliver` one step at a time.
Instead each protocol is a *schedule emitter*: a generator that yields a
stream of :mod:`segments <repro.engine.segments>` —

* :class:`~repro.engine.segments.ObliviousWindow` — a block of radio
  steps whose transmit masks are all fixed before the first of them
  executes (Decay sweeps, EstimateEffectiveDegree levels, round-robin
  rotations, background blocks);
* :class:`~repro.engine.segments.DecisionStep` — a single step whose
  mask may depend on everything heard so far (slot-schedule passes,
  marking decisions);
* :class:`~repro.engine.segments.TracePhase` — a trace-attribution
  switch (no radio step).

and the :class:`~repro.engine.runner.WindowedRunner` executes the
stream: oblivious windows through the batched
:meth:`~repro.radio.network.RadioNetwork.deliver_window` sparse product,
decision points through the fused single-step
:meth:`~repro.radio.network.RadioNetwork.deliver` path. The runner
preserves the exact rng stream, ``steps_elapsed`` count, and trace
totals of the step-wise loops it replaces — the contract every
``*_reference`` implementation and ``tests/test_engine_windowed.py``
pin down (see DESIGN.md, "The engine layer").
"""

from .runner import (
    WindowedRunner,
    protocol_schedule,
    run_schedule,
)
from .segments import (
    DecisionStep,
    ObliviousWindow,
    ProtocolSchedule,
    Segment,
    TracePhase,
    coin_chunk,
)

__all__ = [
    "DecisionStep",
    "ObliviousWindow",
    "ProtocolSchedule",
    "Segment",
    "TracePhase",
    "WindowedRunner",
    "coin_chunk",
    "protocol_schedule",
    "run_schedule",
]
