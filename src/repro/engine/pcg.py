"""Vectorized PCG64 jump-ahead: coin draws at chosen stream offsets.

The residual-delivery path (:mod:`repro.engine.residual`) wants the
coins of a ``(k, n)`` chunk only at its live columns — a small fraction
of ``n`` in late protocol rounds — while staying bit-identical to the
reference emitters, which draw the *full* ``rng.random((k, n))`` block.
Values sampled at arbitrary offsets of the generator's future stream
make that possible: produce exactly the doubles the full draw would
have placed at ``(row, col)`` for the requested columns, then advance
the generator past the whole block in one
``bit_generator.advance(k * n)`` — same values where it matters, same
final generator state, a fraction of the work.

This requires the default :class:`numpy.random.PCG64` bit generator,
whose underlying LCG has a closed-form jump: ``state_d = A^d * state +
(A^d - 1) / (A - 1) * inc (mod 2^128)``, computed per offset by
square-and-multiply. One ``Generator.random()`` double consumes exactly
one ``next_uint64`` call, and numpy's PCG64 output function is XSL-RR
of the *post-advance* state (advance one LCG step, then ``rotr64(hi ^
lo, hi >> 58)``), with the double built as ``(out >> 11) * 2^-53`` —
all three conventions are pinned against numpy itself by
``tests/test_residual.py``, so a numpy whose stream differs fails
loudly instead of silently diverging. Other bit generators fall back to
draw-and-slice (same stream, none of the savings).

All 128-bit arithmetic is emulated on ``uint64`` limb pairs with
32-bit-half multiplies — pure vectorized numpy, no new dependencies.
"""

from __future__ import annotations

import numpy as np

#: The PCG64 LCG multiplier (Melissa O'Neill's default 128-bit constant,
#: the one numpy's PCG64 uses — verified against ``bit_generator.advance``).
PCG64_MULT = 0x2360ED051FC65DA44385DF649FCCF645

_MASK64 = (1 << 64) - 1
_MASK128 = (1 << 128) - 1
_INV_2_53 = float(2.0**-53)

#: Measured per-value cost of the jump-ahead draw relative to a plain
#: ``rng.random`` block (the limb-pair multiplies plus their
#: temporaries against one hardware PRNG step; ~10x at realistic chunk
#: heights once the per-column transforms amortize). Column sets larger
#: than ``n / OFFSET_COST_FACTOR`` draw the full block and slice
#: instead — same values, cheaper at that width.
OFFSET_COST_FACTOR = 10


def _mulhi64(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """High 64 bits of the 128-bit product of two uint64 operands.

    Schoolbook on 32-bit halves; every partial product and carry sum
    stays below 2^64, so nothing here can overflow.
    """
    a0 = a & np.uint64(0xFFFFFFFF)
    a1 = a >> np.uint64(32)
    b0 = b & np.uint64(0xFFFFFFFF)
    b1 = b >> np.uint64(32)
    p01 = a0 * b1
    p10 = a1 * b0
    mid = (
        ((a0 * b0) >> np.uint64(32))
        + (p01 & np.uint64(0xFFFFFFFF))
        + (p10 & np.uint64(0xFFFFFFFF))
    )
    return (
        a1 * b1
        + (p01 >> np.uint64(32))
        + (p10 >> np.uint64(32))
        + (mid >> np.uint64(32))
    )


def _mul128(ahi, alo, bhi, blo):
    """``(a * b) mod 2^128`` on (hi, lo) uint64 limb pairs."""
    lo = alo * blo  # wraps mod 2^64, exactly the low limb
    hi = _mulhi64(alo, blo) + ahi * blo + alo * bhi
    return hi, lo


def _add128(ahi, alo, bhi, blo):
    """``(a + b) mod 2^128`` on (hi, lo) uint64 limb pairs."""
    lo = alo + blo
    carry = (lo < alo).astype(np.uint64)
    return ahi + bhi + carry, lo


def _split128(value: int) -> tuple[np.uint64, np.uint64]:
    """A python int mod 2^128 as an (hi, lo) uint64 scalar pair."""
    value &= _MASK128
    return np.uint64(value >> 64), np.uint64(value & _MASK64)


def jump_transform(delta: int, inc: int) -> tuple[int, int]:
    """The LCG jump ``(A_delta, C_delta)`` for one offset, as ints.

    ``state_delta = (A_delta * state + C_delta) mod 2^128`` advances a
    PCG64 LCG with increment ``inc`` by ``delta`` steps — the standard
    square-and-multiply accumulation (Brown, "Random number generation
    with arbitrary strides").
    """
    if delta < 0:
        raise ValueError(f"jump delta must be >= 0, got {delta}")
    acc_mult, acc_plus = 1, 0
    cur_mult, cur_plus = PCG64_MULT, inc & _MASK128
    while delta > 0:
        if delta & 1:
            acc_mult = (acc_mult * cur_mult) & _MASK128
            acc_plus = (acc_plus * cur_mult + cur_plus) & _MASK128
        cur_plus = ((cur_mult + 1) * cur_plus) & _MASK128
        cur_mult = (cur_mult * cur_mult) & _MASK128
        delta >>= 1
    return acc_mult, acc_plus


def _jump_transforms_vec(deltas: np.ndarray, inc: int):
    """Vectorized :func:`jump_transform` over an array of offsets.

    Returns four uint64 arrays ``(Ahi, Alo, Chi, Clo)`` — one (A, C)
    limb pair per delta. The squaring chain is shared (scalar python
    ints); only the conditional accumulation is per-element.
    """
    m = deltas.size
    a_hi = np.zeros(m, dtype=np.uint64)
    a_lo = np.ones(m, dtype=np.uint64)
    c_hi = np.zeros(m, dtype=np.uint64)
    c_lo = np.zeros(m, dtype=np.uint64)
    if m == 0:
        return a_hi, a_lo, c_hi, c_lo
    cur_mult, cur_plus = PCG64_MULT, inc & _MASK128
    d = deltas.astype(np.uint64)
    for bit in range(int(deltas.max()).bit_length()):
        sel = (d >> np.uint64(bit)) & np.uint64(1) == np.uint64(1)
        if sel.any():
            m_hi, m_lo = _split128(cur_mult)
            p_hi, p_lo = _split128(cur_plus)
            hi, lo = _mul128(a_hi[sel], a_lo[sel], m_hi, m_lo)
            a_hi[sel], a_lo[sel] = hi, lo
            hi, lo = _mul128(c_hi[sel], c_lo[sel], m_hi, m_lo)
            hi, lo = _add128(hi, lo, p_hi, p_lo)
            c_hi[sel], c_lo[sel] = hi, lo
        cur_plus = ((cur_mult + 1) * cur_plus) & _MASK128
        cur_mult = (cur_mult * cur_mult) & _MASK128
    return a_hi, a_lo, c_hi, c_lo


def _xsl_rr_double(state_hi: np.ndarray, state_lo: np.ndarray) -> np.ndarray:
    """numpy's PCG64 output path: XSL-RR of a (post-advance) state,
    then the 53-bit double ``(out >> 11) * 2^-53``."""
    rot = state_hi >> np.uint64(58)
    x = state_hi ^ state_lo
    out = (x >> rot) | (x << ((np.uint64(64) - rot) & np.uint64(63)))
    return (out >> np.uint64(11)).astype(np.float64) * _INV_2_53


def supports_offset_draws(rng: np.random.Generator) -> bool:
    """Whether ``rng`` rides a plain PCG64 (the jump math's target).

    Exact type check on purpose: PCG64DXSM shares the state layout but
    not the output function, so it must take the fallback path.
    """
    return type(rng.bit_generator) is np.random.PCG64


def peek_uniform_block(
    rng: np.random.Generator,
    rows: int,
    stride: int,
    cols: np.ndarray,
) -> np.ndarray:
    """The doubles ``rng.random((rows, stride))[:, cols]`` *would*
    produce, computed at their stream offsets without advancing ``rng``.

    ``cols`` must hold column indices in ``[0, stride)``. The caller
    that wants the generator to end up exactly where the full block
    draw would have left it follows up with
    ``rng.bit_generator.advance(rows * stride)`` (what
    :meth:`CoinField.draw_at` does).
    """
    cols = np.asarray(cols, dtype=np.int64)
    state = rng.bit_generator.state["state"]
    inc = int(state["inc"])
    s = int(state["state"])

    # Per-column transforms: draw (t, cols[j]) is stream offset
    # t * stride + cols[j], and numpy outputs the *post-advance* state,
    # so the state to output has been advanced offset + 1 times.
    a_hi, a_lo, c_hi, c_lo = _jump_transforms_vec(cols + 1, inc)

    # Per-row base states: row t starts t * stride draws in.
    row_mult, row_plus = jump_transform(stride, inc)
    s_hi = np.empty(rows, dtype=np.uint64)
    s_lo = np.empty(rows, dtype=np.uint64)
    for t in range(rows):
        s_hi[t] = s >> 64
        s_lo[t] = s & _MASK64
        s = (row_mult * s + row_plus) & _MASK128

    g_hi, g_lo = _mul128(
        a_hi[None, :], a_lo[None, :], s_hi[:, None], s_lo[:, None]
    )
    g_hi, g_lo = _add128(g_hi, g_lo, c_hi[None, :], c_lo[None, :])
    return _xsl_rr_double(g_hi, g_lo)


def row_base_states(
    rng: np.random.Generator, rows: int, stride: int
) -> tuple[np.ndarray, np.ndarray, np.uint64, np.uint64, np.uint64, np.uint64]:
    """Per-row LCG launch states for a fused ``(rows, stride)`` block.

    Returns ``(s_hi, s_lo, i_hi, i_lo, m_hi, m_lo)``: the (hi, lo)
    uint64 limbs of the generator state at the *start* of each row of a
    row-major ``rng.random((rows, stride))`` draw (row ``t`` begins
    ``t * stride`` draws into the future, computed with the same
    :func:`jump_transform` stride jump :func:`peek_uniform_block`
    uses), plus the increment and multiplier limbs. This is the host
    side of the fused pipeline kernel
    (:mod:`repro.engine.kernels`): the compiled kernel advances each
    row's state one draw at a time — bit-identical to the block draw —
    and the caller then moves the generator past the block with
    ``rng.bit_generator.advance(rows * stride)``. Does not advance
    ``rng`` itself.
    """
    state = rng.bit_generator.state["state"]
    inc = int(state["inc"])
    s = int(state["state"])
    row_mult, row_plus = jump_transform(stride, inc)
    s_hi = np.empty(rows, dtype=np.uint64)
    s_lo = np.empty(rows, dtype=np.uint64)
    for t in range(rows):
        s_hi[t] = s >> 64
        s_lo[t] = s & _MASK64
        s = (row_mult * s + row_plus) & _MASK128
    i_hi, i_lo = _split128(inc)
    m_hi, m_lo = _split128(PCG64_MULT)
    return s_hi, s_lo, i_hi, i_lo, m_hi, m_lo


class CoinField:
    """The coin source behind one streamed transmit plan.

    ``draw(start, stop)`` is the legacy full block — a plain
    ``rng.random((k, n))``, byte-identical to what the pre-residual
    emitters drew. ``draw_at(start, stop, cols)`` returns only the
    requested columns of that block while consuming the generator
    exactly as the full draw would (offset generation + one
    ``advance``, or block-draw-and-slice on non-PCG64 generators and
    wide column sets) — so restricted and unrestricted executions of
    one plan share a single rng stream, value for value.

    The streaming executor's contract (consecutive, non-overlapping
    ``[start, stop)`` intervals covering the plan in order, once each)
    is what lets both forms map interval ``[start, stop)`` onto stream
    offsets ``[start * n, stop * n)`` without any internal bookkeeping.
    """

    def __init__(self, rng: np.random.Generator, n: int) -> None:
        self.rng = rng
        self.n = int(n)
        self._offset_ok = supports_offset_draws(rng)
        self._scratch: np.ndarray | None = None

    def _block(self, k: int) -> np.ndarray:
        """Fill and return ``k`` full rows of a reused scratch block.

        ``Generator.random(out=...)`` into one long-lived buffer
        instead of a fresh ``(k, n)`` allocation per chunk: at
        streaming chunk sizes the fresh pages' first-touch faults are
        a measurable slice of the draw itself. The view is only valid
        until the next draw — every caller consumes it immediately
        (threshold compare or column take).
        """
        if self._scratch is None or self._scratch.shape[0] < k:
            self._scratch = np.empty((k, self.n), dtype=np.float64)
        view = self._scratch[:k]
        self.rng.random(out=view)
        return view

    def draw(self, start: int, stop: int) -> np.ndarray:
        """The full ``(stop - start, n)`` coin block (legacy form).

        Returns a view of a reused scratch buffer, valid until the
        next draw on this field — callers threshold it into a bool
        mask immediately (and may mutate it in place: the values are
        dead once the mask exists).
        """
        return self._block(stop - start)

    def draw_at(
        self, start: int, stop: int, cols: np.ndarray
    ) -> np.ndarray:
        """Columns ``cols`` of the full block, same stream consumption."""
        k = stop - start
        if k <= 0:
            return np.empty((0, cols.size), dtype=np.float64)
        if (
            not self._offset_ok
            or cols.size * OFFSET_COST_FACTOR >= self.n
        ):
            # Draw-and-slice fallback, in bounded row blocks so the
            # full-width scratch stays within the streaming cost model
            # even when the restricted chunk height was sized for the
            # (much narrower) residual width. The column take lands
            # straight in the preassembled result — no per-block
            # slices, no concatenate copy.
            from .segments import coin_chunk

            block = coin_chunk(self.n)
            out = np.empty((k, cols.size), dtype=np.float64)
            done = 0
            while done < k:
                rows = min(block, k - done)
                np.take(
                    self._block(rows), cols, axis=1,
                    out=out[done:done + rows],
                )
                done += rows
            return out
        vals = peek_uniform_block(self.rng, k, self.n, cols)
        self.rng.bit_generator.advance(k * self.n)
        return vals

    @property
    def offset_ok(self) -> bool:
        """Whether the generator supports offset (jump-ahead) draws."""
        return self._offset_ok

    def launch_states(
        self, start: int, stop: int
    ) -> tuple[
        np.ndarray, np.ndarray, np.uint64, np.uint64, np.uint64, np.uint64
    ]:
        """Per-row launch states for block ``[start, stop)``.

        The streaming contract (consecutive intervals, in order) means
        the generator already sits at stream offset ``start * n``, so
        the row states come straight off the current state. The caller
        pairs this with :meth:`skip` once the fused kernel has produced
        the block's draws. Only valid when :attr:`offset_ok`.
        """
        return row_base_states(self.rng, stop - start, self.n)

    def skip(self, rows: int) -> None:
        """Consume ``rows`` full block rows without materializing them.

        Leaves the generator exactly where ``draw(start, start + rows)``
        would have — the fused pipeline kernel generates those values
        inline from :meth:`launch_states` instead.
        """
        self.rng.bit_generator.advance(rows * self.n)


__all__ = [
    "CoinField",
    "OFFSET_COST_FACTOR",
    "PCG64_MULT",
    "jump_transform",
    "peek_uniform_block",
    "row_base_states",
    "supports_offset_draws",
]
