"""Window multiplexing: fuse two planned protocol streams into one.

The paper's background processes run "concurrently via time
multiplexing" (Appendix A): a main protocol takes the even steps, a
background process the odd ones. Before this module, the engine could
only execute such a pair through the legacy-protocol adapter — every
multiplexed step a :class:`~repro.engine.segments.DecisionStep`, one
fused dense delivery per step — because the generator IR could not see
both protocols' upcoming windows at once. The plan/commit split
(:class:`~repro.engine.segments.SegmentProtocol`) removes that
limitation, and :func:`multiplex` is the payoff: it *zips* the two
streams' planned mask rows into joint
:class:`~repro.engine.segments.ObliviousWindow` segments, which the
runner executes as (mostly sparse, density-routed) window products.
ICP's Decay background is the motivating case: its sweeps are planned
span-wide, so the fused run executes ~half as many delivery calls, each
a cheap sparse product over the few transmitters of a slot or a sweep
row, instead of one dense matvec per step.

Bit-identity argument (pinned by ``tests/test_engine_mux.py`` and the
fuzz suite): a radio step's ``hear_from`` is a pure function of that
step's mask, so *any* batching of already-planned rows delivers
identical receptions; what must be preserved is the causal order of
``plan`` and ``commit`` calls, because those are the points where
sources read shared state and draw randomness. The combinator
guarantees the reference drivers' order with one rule — **flush before
plan**: before any source plans, every row zipped so far is executed
(one joint window) and every completed segment committed, in row
order. A source therefore plans at exactly the multiplexed step where
the step-wise :class:`~repro.radio.protocol.TimeMultiplexer` would
have called its ``transmit_mask``, seeing the same shared state and
the same rng stream position.

Termination mirrors the reference drivers, which re-check
``main.finished`` between every pair of steps: the joint stream ends
*before* the first row that would follow the main stream's last one.
Batching across those checks is only sound when their outcomes are
predetermined, which is why the main stream must report an exact
:meth:`~repro.engine.segments.SegmentProtocol.steps_remaining` —
deterministic-length protocols like ICP's slot passes do; for anything
else the reference interleaving is the only faithful execution and
:func:`multiplex` refuses rather than guess.

:class:`~repro.engine.segments.TracePhase` is not allowed inside
multiplexed sub-streams — phase attribution is ambiguous when two
protocols interleave (set the phase around the whole multiplexed run
instead). This was a docstring promise of :mod:`repro.engine.segments`;
here it is enforced with :class:`~repro.radio.errors.ProtocolError`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..radio.errors import ProtocolError
from .segments import (
    DecisionStep,
    ObliviousWindow,
    ProtocolSchedule,
    SegmentProtocol,
    TracePhase,
)

#: Stream indices in the ``slots`` pattern.
MAIN, BACKGROUND = 0, 1


def _coerce_masks(segment: Any, n: int, who: str) -> np.ndarray:
    """Validate a sub-stream's planned segment, returning its mask rows."""
    if isinstance(segment, TracePhase):
        raise ProtocolError(
            f"{who} sub-stream planned a TracePhase inside multiplex(); "
            "phase attribution is ambiguous when two protocols "
            "interleave — set the phase around the whole multiplexed "
            "run instead"
        )
    if isinstance(segment, DecisionStep):
        masks = np.asarray(segment.mask)[None, :]
    elif isinstance(segment, ObliviousWindow):
        masks = np.asarray(segment.masks)
    else:
        raise ProtocolError(
            f"{who} sub-stream planned a non-segment: {segment!r}"
        )
    if masks.ndim != 2 or masks.shape[1] != n:
        raise ProtocolError(
            f"{who} sub-stream planned masks of shape {masks.shape}, "
            f"expected (w, {n})"
        )
    if masks.dtype != np.bool_:
        raise ProtocolError(
            f"{who} sub-stream planned masks of dtype {masks.dtype}, "
            "expected bool"
        )
    return masks


def multiplex(
    main: SegmentProtocol,
    background: SegmentProtocol,
    slots: Sequence[int] = (MAIN, BACKGROUND),
    *,
    rng: np.random.Generator,
    max_steps: int | None = None,
) -> ProtocolSchedule:
    """Zip two plan/commit streams into one joint oblivious schedule.

    Parameters
    ----------
    main:
        The terminating stream. Must have an exact
        :meth:`~repro.engine.segments.SegmentProtocol.steps_remaining`
        (see module docstring); the multiplexed run ends when it has no
        more rows, exactly as :class:`~repro.radio.protocol
        .TimeMultiplexer` finishes with its main protocol.
    background:
        The concurrent stream. Runs until ``main`` ends; if it ends
        first (``plan`` returns ``None``), its remaining slots transmit
        silence, matching the reference multiplexer's treatment of a
        finished sub-protocol.
    slots:
        The repeating interleaving pattern as stream indices, default
        ``(0, 1)`` — strict alternation, the paper's time multiplexing.
        Patterns like ``(0, 1, 1)`` give the background two steps per
        main step. Must contain a ``0`` (the main stream must get
        slots) and only values 0 and 1.
    rng:
        Randomness source forwarded to both streams' ``plan`` calls —
        one shared generator, so draws interleave in exactly the
        reference drivers' order.
    max_steps:
        Optional cap on total zipped radio steps, mirroring the
        ``steps`` bound of the step-wise drivers: the joint stream
        stops (mid-segment if necessary) once the cap is reached.
        Planned-but-unexecuted segments are never committed, matching a
        reference run that stops mid-block.

    Returns
    -------
    ProtocolSchedule
        A generator-form schedule yielding joint
        :class:`~repro.engine.segments.ObliviousWindow` segments; its
        ``StopIteration`` value is ``main.result()``.
    """
    # Validate eagerly — this wrapper is a plain function, so contract
    # violations surface at the call site, not at the first send().
    slots = tuple(slots)
    if not slots or any(s not in (MAIN, BACKGROUND) for s in slots):
        raise ProtocolError(
            f"slots must be a non-empty pattern over {{0, 1}}, got {slots!r}"
        )
    if MAIN not in slots:
        raise ProtocolError(
            "slots pattern never schedules the main stream (index 0); "
            "the multiplexed run could not terminate"
        )
    if main.steps_remaining() is None:
        raise ProtocolError(
            "multiplex() needs a main stream with an exact "
            "steps_remaining(): the step-wise reference re-checks "
            "termination between every pair of steps, and batching "
            "past those checks is only sound when their outcomes are "
            "predetermined (wrap deterministic-length protocols in "
            "ProtocolSegmentSource(protocol, steps=...))"
        )
    if background.n != main.n:
        raise ProtocolError(
            f"stream sizes disagree: main n={main.n}, "
            f"background n={background.n}"
        )
    if max_steps is not None and max_steps < 0:
        raise ProtocolError(f"max_steps must be >= 0, got {max_steps}")
    return _multiplex(main, background, slots, rng, max_steps)


def _multiplex(
    main: SegmentProtocol,
    background: SegmentProtocol,
    slots: tuple[int, ...],
    rng: np.random.Generator,
    max_steps: int | None,
) -> ProtocolSchedule:
    """Generator body of :func:`multiplex` (arguments pre-validated)."""
    n = main.n
    streams = (main, background)
    cur: list[np.ndarray | None] = [None, None]  # planned segment rows
    taken = [0, 0]  # rows of cur handed into joint windows
    heard: list[list[np.ndarray]] = [[], []]  # executed, uncommitted rows
    decision = [False, False]  # current segment was a DecisionStep
    ended = [False, False]  # plan() returned None
    rows: list[np.ndarray] = []  # the open joint window
    owners: list[int | None] = []
    silent = np.zeros(n, dtype=bool)
    total = 0
    pos = 0

    def _fold(reply: np.ndarray) -> None:
        """Route a flushed window's hear rows; commit completed segments
        in row order (the step-wise drivers' observe order)."""
        for i, owner in enumerate(owners):
            if owner is None:
                continue
            heard[owner].append(reply[i])
            segment = cur[owner]
            assert segment is not None
            if len(heard[owner]) == segment.shape[0]:
                stacked = np.stack(heard[owner])
                # A DecisionStep's reply is a 1-D hear vector everywhere
                # else in the engine; keep that shape here too.
                streams[owner].commit(
                    stacked[0] if decision[owner] else stacked
                )
                heard[owner] = []
                cur[owner] = None
                taken[owner] = 0
        rows.clear()
        owners.clear()

    def _main_has_more() -> bool:
        segment = cur[MAIN]
        if segment is not None and taken[MAIN] < segment.shape[0]:
            return True
        if ended[MAIN]:
            return False
        remaining = main.steps_remaining()
        if remaining is None:
            raise ProtocolError(
                "main stream's steps_remaining() became unknown mid-run"
            )
        return remaining > 0

    while True:
        s = slots[pos % len(slots)]
        if not _main_has_more():
            break
        if max_steps is not None and total >= max_steps:
            break
        if not ended[s]:
            # Ensure the stream has an untaken planned row; planning
            # requires a clean frontier (flush + commit), the rule that
            # pins every plan() to its reference-driver causal point.
            while cur[s] is None or taken[s] == cur[s].shape[0]:
                if rows:
                    reply = yield ObliviousWindow(np.array(rows))
                    _fold(reply)
                segment = streams[s].plan(rng)
                if segment is None:
                    ended[s] = True
                    break
                masks = _coerce_masks(
                    segment, n, "main" if s == MAIN else "background"
                )
                decision[s] = isinstance(segment, DecisionStep)
                if masks.shape[0] == 0:
                    # A zero-step segment executes nothing; commit its
                    # empty reply immediately (what the plain runner's
                    # deliver_window would have returned) and plan on.
                    streams[s].commit(
                        np.empty((0, n), dtype=np.int64)
                    )
                    continue
                cur[s] = masks
                taken[s] = 0
                heard[s] = []
            if ended[MAIN] and s == MAIN:
                continue  # termination check at the top will break
        if ended[s]:
            rows.append(silent)
            owners.append(None)
        else:
            segment = cur[s]
            assert segment is not None
            rows.append(segment[taken[s]])
            owners.append(s)
            taken[s] += 1
        total += 1
        pos += 1

    if rows:
        reply = yield ObliviousWindow(np.array(rows))
        _fold(reply)
    return main.result()


__all__ = ["BACKGROUND", "MAIN", "multiplex"]
