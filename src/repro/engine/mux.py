"""Window multiplexing: fuse planned protocol streams into one.

The paper's background processes run "concurrently via time
multiplexing" (Appendix A): a main protocol takes the even steps, a
background process the odd ones. Before this module, the engine could
only execute such a pair through the legacy-protocol adapter — every
multiplexed step a :class:`~repro.engine.segments.DecisionStep`, one
fused dense delivery per step — because the generator IR could not see
both protocols' upcoming windows at once. The plan/commit split
(:class:`~repro.engine.segments.SegmentProtocol`) removes that
limitation, and :func:`multiplex` is the payoff: it *zips* the
streams' planned mask rows into joint
:class:`~repro.engine.segments.ObliviousWindow` segments, which the
runner executes as (mostly sparse, density-routed) window products.
ICP's Decay background is the motivating case: its sweeps are planned
span-wide, so the fused run executes ~half as many delivery calls, each
a cheap sparse product over the few transmitters of a slot or a sweep
row, instead of one dense matvec per step.

The combinator is **k-way**: ``multiplex(main, *backgrounds, slots=...)``
zips one terminating main stream with any number of background streams,
the repeating ``slots`` pattern assigning each joint step to a stream
(``0`` the main, ``i >= 1`` the ``i``-th background). The default
pattern is strict round-robin over all streams — the paper's
time multiplexing for one background, its natural generalization
beyond.

Bit-identity argument (pinned by ``tests/test_engine_mux.py`` and the
fuzz suite): a radio step's ``hear_from`` is a pure function of that
step's mask, so *any* batching of already-planned rows delivers
identical receptions; what must be preserved is the causal order of
``plan`` and ``commit`` calls, because those are the points where
sources read shared state and draw randomness. The combinator
guarantees the reference drivers' order with one rule — **flush before
plan**: before any source plans, every row zipped so far is executed
(one joint window) and every completed segment committed, in row
order. A source therefore plans at exactly the multiplexed step where
the step-wise :class:`~repro.radio.protocol.TimeMultiplexer` would
have called its ``transmit_mask``, seeing the same shared state and
the same rng stream position.

Termination mirrors the reference drivers, which re-check
``main.finished`` between every pair of steps: the joint stream ends
*before* the first row that would follow the main stream's last one.
Batching across those checks is only sound when their outcomes are
predetermined, which is why the main stream must report an exact
:meth:`~repro.engine.segments.SegmentProtocol.steps_remaining` —
deterministic-length protocols like ICP's slot passes do; for anything
else the reference interleaving is the only faithful execution and
:func:`multiplex` refuses with a :class:`~repro.radio.errors
.ProtocolError` naming the offending source (one consistent refusal at
the combinator, wherever the call came from — the CLI's ``icp
--fused``, packet Compete's fused phases, or a direct call).

Streaming: with ``stream=True`` the flushed joint windows go out as
:class:`~repro.engine.segments.StreamedWindow` segments — the runner
executes them in bounded slabs and the combinator folds each slab's
rows (committing completed sub-segments, in row order) as it arrives,
so joint hear-windows never materialize whole. Commits then land
mid-window instead of after it, which is *closer* to the step-wise
drivers' observe-per-step order and reads the same shared state: no
source plans until the whole window is flushed either way.

:class:`~repro.engine.segments.TracePhase` is not allowed inside
multiplexed sub-streams — phase attribution is ambiguous when
protocols interleave (set the phase around the whole multiplexed run
instead). Nor are nested :class:`~repro.engine.segments
.StreamedWindow` plans: a sub-stream's planned rows must be
materialized to be zipped (the joint windows themselves are what
stream).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..radio.errors import ProtocolError
from ..radio.network import as_transmit_plan
from .segments import (
    DecisionStep,
    ObliviousWindow,
    ProtocolSchedule,
    SegmentProtocol,
    StreamedWindow,
    TracePhase,
)

#: Stream indices in the ``slots`` pattern (the first background; a
#: k-way pattern uses indices ``0 .. k``).
MAIN, BACKGROUND = 0, 1


def _coerce_masks(segment: Any, n: int, who: str) -> np.ndarray:
    """Validate a sub-stream's planned segment, returning its mask rows."""
    if isinstance(segment, TracePhase):
        raise ProtocolError(
            f"{who} planned a TracePhase inside multiplex(); "
            "phase attribution is ambiguous when protocols "
            "interleave — set the phase around the whole multiplexed "
            "run instead"
        )
    if isinstance(segment, StreamedWindow):
        raise ProtocolError(
            f"{who} planned a StreamedWindow inside multiplex(); "
            "sub-stream rows must be materialized to be zipped — "
            "plan ObliviousWindows and let the joint windows stream "
            "(multiplex(..., stream=True)) instead"
        )
    if isinstance(segment, DecisionStep):
        masks = np.asarray(segment.mask)[None, :]
    elif isinstance(segment, ObliviousWindow):
        masks = np.asarray(segment.masks)
    else:
        raise ProtocolError(
            f"{who} planned a non-segment: {segment!r}"
        )
    if masks.ndim != 2 or masks.shape[1] != n:
        raise ProtocolError(
            f"{who} planned masks of shape {masks.shape}, "
            f"expected (w, {n})"
        )
    if masks.dtype != np.bool_:
        raise ProtocolError(
            f"{who} planned masks of dtype {masks.dtype}, "
            "expected bool"
        )
    return masks


def multiplex(
    main: SegmentProtocol,
    *backgrounds: SegmentProtocol,
    slots: Sequence[int] | None = None,
    rng: np.random.Generator,
    max_steps: int | None = None,
    stream: bool = False,
) -> ProtocolSchedule:
    """Zip plan/commit streams into one joint oblivious schedule.

    Parameters
    ----------
    main:
        The terminating stream. Must have an exact
        :meth:`~repro.engine.segments.SegmentProtocol.steps_remaining`
        (see module docstring); the multiplexed run ends when it has no
        more rows, exactly as :class:`~repro.radio.protocol
        .TimeMultiplexer` finishes with its main protocol.
    *backgrounds:
        One or more concurrent streams. Each runs until ``main`` ends;
        a background that ends first (``plan`` returns ``None``) has
        its remaining slots transmit silence, matching the reference
        multiplexer's treatment of a finished sub-protocol.
    slots:
        The repeating interleaving pattern as stream indices — ``0``
        the main stream, ``i >= 1`` the ``i``-th background. Defaults
        to strict round-robin over all streams (``(0, 1)`` for one
        background: the paper's time multiplexing). Patterns like
        ``(0, 1, 1)`` give a background extra steps, ``(0, 1, 2)``
        interleaves two backgrounds. Must contain a ``0`` (the main
        stream must get slots) and only indices of actual streams.
    rng:
        Randomness source forwarded to every stream's ``plan`` call —
        one shared generator, so draws interleave in exactly the
        reference drivers' order.
    max_steps:
        Optional cap on total zipped radio steps, mirroring the
        ``steps`` bound of the step-wise drivers: the joint stream
        stops (mid-segment if necessary) once the cap is reached.
        Planned-but-unexecuted segments are never committed, matching a
        reference run that stops mid-block.
    stream:
        Emit flushed joint windows as
        :class:`~repro.engine.segments.StreamedWindow` segments (the
        runner's ``chunk_steps``/``mem_budget`` knobs then bound the
        joint hear-window's materialization). Bit-identical either
        way; see module docstring.

    Returns
    -------
    ProtocolSchedule
        A generator-form schedule yielding joint
        :class:`~repro.engine.segments.ObliviousWindow` (or streamed)
        segments; its ``StopIteration`` value is ``main.result()``.
    """
    # Validate eagerly — this wrapper is a plain function, so contract
    # violations surface at the call site, not at the first send().
    if not backgrounds:
        raise ProtocolError(
            "multiplex() needs at least one background stream"
        )
    for stream_ in (main, *backgrounds):
        # Catch the pre-k-way calling convention (slots passed
        # positionally) and plain misuse with a clear error instead of
        # an AttributeError deep in validation.
        if not isinstance(stream_, SegmentProtocol):
            raise ProtocolError(
                f"multiplex() streams must be SegmentProtocol "
                f"instances, got {stream_!r} (note: slots is "
                "keyword-only — multiplex(main, *backgrounds, "
                "slots=...))"
            )
    streams = (main, *backgrounds)
    slots = (
        tuple(range(len(streams))) if slots is None else tuple(slots)
    )
    if not slots or any(
        s not in range(len(streams)) for s in slots
    ):
        raise ProtocolError(
            f"slots must be a non-empty pattern over stream indices "
            f"0..{len(streams) - 1}, got {slots!r}"
        )
    if MAIN not in slots:
        raise ProtocolError(
            "slots pattern never schedules the main stream (index 0); "
            "the multiplexed run could not terminate"
        )
    if main.steps_remaining() is None:
        raise ProtocolError(
            f"multiplex() needs a main stream with an exact "
            f"steps_remaining(), but {type(main).__name__} reports "
            "None (data-dependent length): the step-wise reference "
            "re-checks termination between every pair of steps, and "
            "batching past those checks is only sound when their "
            "outcomes are predetermined (wrap deterministic-length "
            "protocols in ProtocolSegmentSource(protocol, steps=...))"
        )
    for i, background in enumerate(backgrounds, start=1):
        if background.n != main.n:
            raise ProtocolError(
                f"stream sizes disagree: main n={main.n}, "
                f"background {i} ({type(background).__name__}) "
                f"n={background.n}"
            )
    if max_steps is not None and max_steps < 0:
        raise ProtocolError(f"max_steps must be >= 0, got {max_steps}")
    return _multiplex(streams, slots, rng, max_steps, stream)


def _multiplex(
    streams: tuple[SegmentProtocol, ...],
    slots: tuple[int, ...],
    rng: np.random.Generator,
    max_steps: int | None,
    stream: bool,
) -> ProtocolSchedule:
    """Generator body of :func:`multiplex` (arguments pre-validated)."""
    main = streams[MAIN]
    n = main.n
    k = len(streams)
    who = ["main"] + [
        f"background {i} ({type(s).__name__})"
        for i, s in enumerate(streams[1:], start=1)
    ]
    cur: list[np.ndarray | None] = [None] * k  # planned segment rows
    taken = [0] * k  # rows of cur handed into joint windows
    heard: list[list[np.ndarray]] = [[] for _ in range(k)]
    decision = [False] * k  # current segment was a DecisionStep
    ended = [False] * k  # plan() returned None
    rows: list[np.ndarray] = []  # the open joint window
    owners: list[int | None] = []
    silent = np.zeros(n, dtype=bool)
    total = 0
    pos = 0

    def _fold_rows(
        reply: np.ndarray, owner_rows: Sequence[int | None]
    ) -> None:
        """Route executed hear rows to their streams; commit completed
        segments in row order (the step-wise drivers' observe order)."""
        for i, owner in enumerate(owner_rows):
            if owner is None:
                continue
            heard[owner].append(reply[i])
            segment = cur[owner]
            assert segment is not None
            if len(heard[owner]) == segment.shape[0]:
                stacked = np.stack(heard[owner])
                # A DecisionStep's reply is a 1-D hear vector everywhere
                # else in the engine; keep that shape here too.
                streams[owner].commit(
                    stacked[0] if decision[owner] else stacked
                )
                heard[owner] = []
                cur[owner] = None
                taken[owner] = 0

    def _flush_segment():
        """The open joint window as one segment; clears the buffers."""
        joint = np.array(rows)
        owner_rows = tuple(owners)
        rows.clear()
        owners.clear()
        if not stream:
            return ObliviousWindow(joint), owner_rows
        cursor = 0

        def consume(slab: np.ndarray) -> None:
            nonlocal cursor
            _fold_rows(slab, owner_rows[cursor : cursor + slab.shape[0]])
            cursor += slab.shape[0]

        return StreamedWindow(as_transmit_plan(joint), consume), None

    def _main_has_more() -> bool:
        segment = cur[MAIN]
        if segment is not None and taken[MAIN] < segment.shape[0]:
            return True
        if ended[MAIN]:
            return False
        remaining = main.steps_remaining()
        if remaining is None:
            raise ProtocolError(
                f"main stream {type(main).__name__}'s steps_remaining() "
                "became unknown mid-run"
            )
        return remaining > 0

    while True:
        s = slots[pos % len(slots)]
        if not _main_has_more():
            break
        if max_steps is not None and total >= max_steps:
            break
        if not ended[s]:
            # Ensure the stream has an untaken planned row; planning
            # requires a clean frontier (flush + commit), the rule that
            # pins every plan() to its reference-driver causal point.
            while cur[s] is None or taken[s] == cur[s].shape[0]:
                if rows:
                    segment, owner_rows = _flush_segment()
                    reply = yield segment
                    if owner_rows is not None:
                        _fold_rows(reply, owner_rows)
                segment = streams[s].plan(rng)
                if segment is None:
                    ended[s] = True
                    break
                masks = _coerce_masks(segment, n, who[s])
                decision[s] = isinstance(segment, DecisionStep)
                if masks.shape[0] == 0:
                    # A zero-step segment executes nothing; commit its
                    # empty reply immediately (what the plain runner's
                    # deliver_window would have returned) and plan on.
                    streams[s].commit(
                        np.empty((0, n), dtype=np.int64)
                    )
                    continue
                cur[s] = masks
                taken[s] = 0
                heard[s] = []
            if ended[MAIN] and s == MAIN:
                continue  # termination check at the top will break
        if ended[s]:
            rows.append(silent)
            owners.append(None)
        else:
            segment = cur[s]
            assert segment is not None
            rows.append(segment[taken[s]])
            owners.append(s)
            taken[s] += 1
        total += 1
        pos += 1

    if rows:
        segment, owner_rows = _flush_segment()
        reply = yield segment
        if owner_rows is not None:
            _fold_rows(reply, owner_rows)
    return main.result()


__all__ = ["BACKGROUND", "MAIN", "multiplex"]
