"""The corpus file format and store: persist once, mmap forever.

One stored graph is one *entry directory* of flat ``.npy`` files plus a
``meta.json``::

    udg-n100000-3f1c9a2b44d0/
        meta.json       format tag, counts, digest, family metadata,
                        scalar invariants (connected, diameter)
        indptr.npy      int32, n + 1      (mmap-loaded)
        indices.npy     int32, 2 m        (mmap-loaded)
        positions.npy   float64 (n, 2)    (mmap-loaded, UDG families)
        degrees.npy     int64, n          (cached invariant)
        mis.npy         int64, sorted     (cached invariant, optional)

Separate ``.npy`` members rather than one ``.npz``: ``np.load`` only
memory-maps plain ``.npy`` files (``mmap_mode`` is silently ignored
inside a zip archive), and zero-copy loading is the point of the
format. :func:`load_graph` hands back a :class:`~repro.corpus.graph
.CSRGraph` whose arrays are read-only ``np.memmap`` views — nothing is
read from disk until a consumer touches the pages.

Entries are keyed by a sha256 **content digest** over the CSR arrays,
the positions, and the canonical family metadata. The digest names the
entry directory (with family and size prefixes for human listing),
deduplicates ``add`` calls, and rides into
``RunReport.provenance["corpus"]`` so a result row names the exact
instance it ran on.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Any

import numpy as np

from ..graphs.context import graph_context
from .graph import CSRGraph

__all__ = [
    "CorpusStore",
    "graph_digest",
    "save_graph",
    "load_graph",
]

#: Format tag written into every ``meta.json``; loaders refuse others.
FORMAT_VERSION = 1

#: ``invariants="auto"`` thresholds: the exact diameter is an
#: all-sources BFS (quadratic-ish) and the greedy MIS a Python heap
#: loop, so both are cached by default only where they are cheap;
#: ``invariants=True`` forces them at any size.
AUTO_DIAMETER_LIMIT = 4096
AUTO_MIS_LIMIT = 50_000


def _canonical_meta(meta: dict[str, Any]) -> dict[str, Any]:
    """The JSON-serializable subset of a metadata dict, digest-stable."""
    out = {}
    for key in sorted(meta):
        if key == "digest":
            continue
        value = meta[key]
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
    return out


def graph_digest(
    indptr: np.ndarray,
    indices: np.ndarray,
    positions: np.ndarray | None,
    meta: dict[str, Any],
) -> str:
    """sha256 content digest of one graph (hex).

    Covers the CSR arrays byte-for-byte, the positions (when present),
    and the canonical metadata — two graphs share a digest iff they are
    the same instance of the same family.
    """
    h = hashlib.sha256()
    h.update(b"repro-corpus-v1")
    h.update(np.ascontiguousarray(indptr, dtype=np.int32).tobytes())
    h.update(np.ascontiguousarray(indices, dtype=np.int32).tobytes())
    if positions is not None:
        h.update(b"pos")
        h.update(
            np.ascontiguousarray(positions, dtype=np.float64).tobytes()
        )
    h.update(
        json.dumps(_canonical_meta(meta), sort_keys=True).encode()
    )
    return h.hexdigest()


def _as_csr_graph(graph: Any) -> CSRGraph:
    """Coerce a save target to :class:`CSRGraph` (zero-copy when it is one).

    networkx graphs must be identity-labeled (``0..n-1`` in iteration
    order) so CSR rows and node labels agree — the invariant every
    corpus consumer relies on.
    """
    if hasattr(graph, "csr_arrays"):
        return graph
    ctx = graph_context(graph)
    if not ctx.has_identity_labels:
        raise ValueError(
            "corpus entries require identity-labeled graphs (0..n-1); "
            "relabel with nx.convert_node_labels_to_integers first"
        )
    pos = None
    node_pos = [graph.nodes[v].get("pos") for v in range(ctx.n)]
    if ctx.n and all(p is not None for p in node_pos):
        pos = np.asarray(node_pos, dtype=np.float64)
    return CSRGraph(
        ctx.indptr, ctx.indices, positions=pos, meta=dict(graph.graph)
    )


def save_graph(
    graph: Any,
    directory: str | os.PathLike,
    invariants: bool | str = "auto",
) -> str:
    """Write one corpus entry into ``directory``; return its digest.

    ``graph`` may be a :class:`CSRGraph` or an identity-labeled
    networkx graph. ``invariants`` controls the cached facts:
    ``"auto"`` (default) stores degrees + connectivity always and
    diameter / greedy MIS up to the ``AUTO_*`` size limits; ``True``
    forces all of them; ``False`` stores only degrees + connectivity.
    The entry is written atomically (temp dir + ``os.replace``), so a
    crashed save never leaves a half-readable entry.
    """
    if invariants not in (True, False, "auto"):
        raise ValueError(
            f'invariants must be True, False, or "auto", got {invariants!r}'
        )
    cg = _as_csr_graph(graph)
    n = cg.number_of_nodes()
    digest = graph_digest(cg.indptr, cg.indices, cg.positions, cg.graph)

    ctx = graph_context(cg)
    connected = ctx.is_connected()
    scalars: dict[str, Any] = {"connected": bool(connected)}
    arrays: dict[str, np.ndarray] = {
        "degrees": ctx.degrees.astype(np.int64)
    }
    if invariants is True or (
        invariants == "auto" and n <= AUTO_DIAMETER_LIMIT
    ):
        if connected and n > 0:
            scalars["diameter"] = int(ctx.diameter)
    if invariants is True or (invariants == "auto" and n <= AUTO_MIS_LIMIT):
        arrays["mis"] = np.asarray(ctx.mis(), dtype=np.int64)

    directory = pathlib.Path(directory)
    directory.parent.mkdir(parents=True, exist_ok=True)
    if directory.exists():
        return digest  # content-addressed: an existing entry is this one
    meta = {
        "format": FORMAT_VERSION,
        "n": n,
        "m": cg.number_of_edges(),
        "digest": digest,
        "meta": _canonical_meta(cg.graph),
        "invariants": scalars,
    }
    tmp = pathlib.Path(
        tempfile.mkdtemp(prefix=".tmp-", dir=directory.parent)
    )
    try:
        np.save(tmp / "indptr.npy", np.ascontiguousarray(cg.indptr))
        np.save(tmp / "indices.npy", np.ascontiguousarray(cg.indices))
        if cg.positions is not None:
            np.save(
                tmp / "positions.npy",
                np.ascontiguousarray(cg.positions, dtype=np.float64),
            )
        for name, arr in arrays.items():
            np.save(tmp / f"{name}.npy", arr)
        (tmp / "meta.json").write_text(json.dumps(meta, indent=1))
        os.replace(tmp, directory)
    finally:
        if tmp.exists():  # pragma: no cover - crash-path cleanup
            for leftover in tmp.iterdir():
                leftover.unlink()
            tmp.rmdir()
    return digest


def load_graph(path: str | os.PathLike, mmap: bool = True) -> CSRGraph:
    """Load a corpus entry as a zero-copy :class:`CSRGraph`.

    With ``mmap`` (default) every array is an ``np.load(...,
    mmap_mode="r")`` view — load time is metadata-only and independent
    of graph size; pages fault in as consumers touch them. ``mmap=
    False`` materializes plain in-memory copies instead.
    """
    path = pathlib.Path(path)
    meta_path = path / "meta.json"
    if not meta_path.is_file():
        raise FileNotFoundError(
            f"{path} is not a corpus entry (no meta.json)"
        )
    meta = json.loads(meta_path.read_text())
    if meta.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported corpus format {meta.get('format')!r} in {path} "
            f"(this build reads format {FORMAT_VERSION})"
        )
    mode = "r" if mmap else None

    def _load(name: str) -> np.ndarray | None:
        file = path / f"{name}.npy"
        if not file.is_file():
            return None
        return np.load(file, mmap_mode=mode)

    indptr, indices = _load("indptr"), _load("indices")
    if indptr is None or indices is None:
        raise ValueError(f"corpus entry {path} is missing its CSR arrays")
    invariants: dict[str, Any] = dict(meta.get("invariants") or {})
    for name in ("degrees", "mis"):
        arr = _load(name)
        if arr is not None:
            invariants[name] = arr
    graph_meta = dict(meta.get("meta") or {})
    graph_meta["digest"] = meta["digest"]
    return CSRGraph(
        indptr,
        indices,
        positions=_load("positions"),
        meta=graph_meta,
        invariants=invariants,
        source="mmap" if mmap else "memory",
    )


class CorpusStore:
    """A directory of corpus entries, addressed by content digest.

    ``add`` names each entry ``<family>-n<nodes>-<digest12>`` — listable
    by humans, resolved by digest prefix. The store is plain files; two
    processes adding the same graph race benignly (same digest, same
    bytes, atomic rename).
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = pathlib.Path(directory)

    def add(self, graph: Any, invariants: bool | str = "auto") -> str:
        """Persist ``graph`` (dedup by digest); return its digest."""
        cg = _as_csr_graph(graph)
        digest = graph_digest(
            cg.indptr, cg.indices, cg.positions, cg.graph
        )
        existing = self._match(digest)
        if existing is not None:
            return digest
        family = str(cg.graph.get("family", "graph")).replace("/", "-")
        name = f"{family}-n{cg.number_of_nodes()}-{digest[:12]}"
        save_graph(cg, self.directory / name, invariants=invariants)
        return digest

    def entries(self) -> list[dict[str, Any]]:
        """``meta.json`` contents of every entry, sorted by name."""
        if not self.directory.is_dir():
            return []
        out = []
        for child in sorted(self.directory.iterdir()):
            meta = child / "meta.json"
            if meta.is_file():
                out.append(json.loads(meta.read_text()))
        return out

    def _match(self, digest_or_prefix: str) -> pathlib.Path | None:
        if not self.directory.is_dir():
            return None
        hits = [
            child
            for child in sorted(self.directory.iterdir())
            if (child / "meta.json").is_file()
            and json.loads((child / "meta.json").read_text())[
                "digest"
            ].startswith(digest_or_prefix)
        ]
        if len(hits) > 1:
            raise ValueError(
                f"digest prefix {digest_or_prefix!r} is ambiguous in "
                f"{self.directory} ({len(hits)} entries)"
            )
        return hits[0] if hits else None

    def __contains__(self, digest_or_prefix: object) -> bool:
        return (
            isinstance(digest_or_prefix, str)
            and self._match(digest_or_prefix) is not None
        )

    def path(self, digest_or_prefix: str) -> pathlib.Path:
        """Entry directory of the (unique) digest prefix."""
        hit = self._match(digest_or_prefix)
        if hit is None:
            raise KeyError(
                f"no corpus entry matches {digest_or_prefix!r} in "
                f"{self.directory}"
            )
        return hit

    def load(self, digest_or_prefix: str, mmap: bool = True) -> CSRGraph:
        """:func:`load_graph` of the entry with this digest prefix."""
        return load_graph(self.path(digest_or_prefix), mmap=mmap)
