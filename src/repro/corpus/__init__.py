"""The graph corpus layer: generate at scale, persist, share.

Three pieces, one pipeline (ROADMAP item 4):

- :mod:`repro.corpus.generate` — array-native UDG / quasi-UDG
  generation via a cell-grid neighbor search, emitting ``(indptr,
  indices)`` CSR directly in ``O(n + m)``, bit-compatible (same rng
  stream, same edge set) with the networkx reference generators in
  :mod:`repro.graphs`;
- :mod:`repro.corpus.store` — the on-disk entry format (flat ``.npy``
  + ``meta.json``, content-digest keyed, cached invariants), loaded
  zero-copy via ``np.load(mmap_mode="r")``;
- :mod:`repro.corpus.shm` — shared-memory publication so pool workers
  attach the same slabs instead of unpickling copies.

The in-memory common coin is :class:`~repro.corpus.graph.CSRGraph`,
which the rest of the repo (``GraphContext``, ``RadioNetwork``,
``repro.api.run``) consumes directly::

    from repro import corpus
    import numpy as np

    rng = np.random.default_rng(0)
    g = corpus.random_udg_csr(100_000, side=187.0, rng=rng)
    store = corpus.CorpusStore("corpus/")
    digest = store.add(g)

    loaded = store.load(digest)          # mmap, zero-copy
    # repro.api.run("mis", loaded, seed=3) — or run(..., corpus=path)
"""

from .generate import (
    grid_udg_csr,
    qudg_csr_graph,
    random_udg_csr,
    udg_csr,
    udg_csr_graph,
)
from .graph import CSRGraph
from .shm import SharedGraph, SharedGraphHandle, attach
from .store import CorpusStore, graph_digest, load_graph, save_graph

__all__ = [
    "CSRGraph",
    "CorpusStore",
    "SharedGraph",
    "SharedGraphHandle",
    "attach",
    "graph_digest",
    "grid_udg_csr",
    "load_graph",
    "qudg_csr_graph",
    "random_udg_csr",
    "save_graph",
    "udg_csr",
    "udg_csr_graph",
]
