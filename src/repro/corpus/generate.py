"""Array-native UDG / quasi-UDG generation via a cell-grid search.

The networkx generators in :mod:`repro.graphs.udg` build graphs
edge-by-edge through Python loops — ~0.6 s at ``n = 2 * 10^4`` and
minutes at ``10^6``. This module emits the same graphs as ``(indptr,
indices)`` CSR arrays directly from the point arrays, in ``O(n + m)``:

1. bucket the points into a grid of square cells with side ``radius``
   — any pair within ``radius`` then lies in the same or one of the 8
   adjacent cells;
2. sort points by cell id once, so each cell is a contiguous slice;
3. for each of the 9 cell offsets, ``searchsorted`` every point's
   neighbor cell into the sorted unique-cell table, expand the
   candidate slices with ``repeat``/``arange``, and keep candidates
   with ``dx^2 + dy^2 <= radius^2`` (the same inclusive squared-
   distance rule ``cKDTree.query_pairs`` applies) — each directed edge
   appears exactly once across the 9 offsets;
4. ``lexsort`` the surviving ``(src, dst)`` pairs into CSR.

Bit-compatibility contract (gated in ``BENCH_PR8.json`` and
``tests/test_corpus.py``): :func:`udg_csr` produces the identical edge
set as :func:`repro.graphs.udg.udg_from_points`, and
:func:`random_udg_csr` additionally consumes the identical rng stream
as :func:`repro.graphs.udg.random_udg` — the uniform point draw is the
only rng use, and the connectivity check (here
``scipy.sparse.csgraph.connected_components``, there
``nx.is_connected``) consumes none, so the retry loops stay in
lockstep. The networkx generators are retained as the references.

For quasi-UDG the annulus decisions of :func:`qudg_csr` are applied in
sorted ``(u, v)`` pair order, whereas the reference iterates a
``query_pairs`` *set* (arbitrary order). Deterministic rules
(``distance_threshold_rule``, ``parity_rule``) therefore produce
identical edge sets; rules that draw from the rng
(``bernoulli_rule``) are well-defined and reproducible here but not
pair-for-pair aligned with the reference's draw order.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from ..graphs.quasi_udg import AnnulusRule, bernoulli_rule
from ..graphs.udg import check_grid_jitter
from .graph import CSRGraph

__all__ = [
    "udg_csr",
    "udg_csr_graph",
    "random_udg_csr",
    "grid_udg_csr",
    "qudg_csr_graph",
]

#: 2^31 - 1: the corpus CSR is int32 (half the bytes of the default
#: int64 at n = 10^6 scale), so directed edge counts must fit.
_INT32_MAX = np.iinfo(np.int32).max


#: Dense cell-table ceiling. The table costs ``O(cells)`` memory; for
#: the corpus families cells ~ n / 3, so ``8 n`` leaves a wide margin
#: while refusing to allocate terabytes for adversarially spread
#: points (two points 10^6 apart in units of ``reach``).
_MAX_DENSE_CELLS = 1 << 23


def _cell_candidates(
    points: np.ndarray, reach: float
) -> tuple[np.ndarray, np.ndarray]:
    """All directed pairs ``(src, dst)`` within ``reach``, each once.

    The cell-grid sweep described in the module docstring, with two
    flattenings that matter at ``n = 10^6``:

    - the grid is padded with one empty ring of cells, so every
      neighbor-cell id is in-bounds and the hot path is branchless
      gathers into a dense ``cell_start`` table (no ``searchsorted``);
    - for each horizontal offset ``dx`` the three vertical neighbors
      ``cy - 1, cy, cy + 1`` are *contiguous* cell ids, so the sweep
      expands 3 column slabs instead of 9 single cells — and all
      ``3 n`` slabs are expanded in a single ``repeat``/``arange``
      pass.

    Squared distances are compared inclusively (``<= reach**2``),
    matching ``cKDTree.query_pairs``. Self-pairs are dropped;
    coincident points are kept.
    """
    n = len(points)
    inv = 1.0 / reach
    cx = np.floor(points[:, 0] * inv).astype(np.int64)
    cy = np.floor(points[:, 1] * inv).astype(np.int64)
    # Shift into the padded grid: occupied coordinates start at 1 and
    # an empty ring surrounds them on all sides.
    cx -= cx.min() - 1
    cy -= cy.min() - 1
    ncx = int(cx.max()) + 2
    ncy = int(cy.max()) + 2
    ncells = ncx * ncy
    if ncells > max(_MAX_DENSE_CELLS, 8 * n):
        raise ValueError(
            f"point spread needs {ncells} grid cells for reach={reach} "
            "— too sparse for the cell-grid corpus generator; use the "
            "networkx reference generator for degenerate spreads"
        )
    cell = cx * ncy + cy

    order = np.argsort(cell, kind="stable").astype(np.int32)
    cell_start = np.zeros(ncells + 1, dtype=np.int64)
    np.cumsum(np.bincount(cell, minlength=ncells), out=cell_start[1:])

    # Slab k*n + i covers point i's 3 vertical neighbor cells at
    # horizontal offset dx = k - 1 (cell ids are contiguous in cy).
    slab_lo = (
        cell[None, :] + np.array([[-ncy], [0], [ncy]]) - 1
    ).ravel()
    counts = (cell_start[slab_lo + 3] - cell_start[slab_lo]).astype(
        np.int64
    )
    total = int(counts.sum())
    src = np.repeat(np.tile(np.arange(n, dtype=np.int32), 3), counts)
    base = np.repeat(cell_start[slab_lo], counts)
    cum = np.concatenate(([0], np.cumsum(counts)[:-1]))
    local = np.arange(total, dtype=np.int64) - np.repeat(cum, counts)
    dst = order[base + local]

    ddx = points[src, 0] - points[dst, 0]
    ddy = points[src, 1] - points[dst, 1]
    keep = (ddx * ddx + ddy * ddy <= reach * reach) & (src != dst)
    return src[keep], dst[keep]


def _pairs_to_csr(
    src: np.ndarray, dst: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Sorted int32 CSR from directed pair arrays (each edge once).

    One in-place sort of the fused ``src * n + dst`` key replaces a
    two-key ``lexsort`` — same ordering, measurably faster at 10^7
    directed edges.
    """
    if len(src) > _INT32_MAX:
        raise ValueError(
            f"{len(src)} directed edges overflow the int32 corpus format"
        )
    key = src.astype(np.int64) * n + dst
    key.sort()
    indices = (key % n).astype(np.int32)
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    return indptr, indices


def udg_csr(
    points: np.ndarray, radius: float = 1.0
) -> tuple[np.ndarray, np.ndarray]:
    """CSR adjacency of the unit disk graph of a point set.

    Bit-identical edge set to
    :func:`repro.graphs.udg.udg_from_points` (inclusive radius), as
    sorted int32 ``(indptr, indices)``.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(
            f"expected an (n, 2) point array, got {points.shape}"
        )
    n = len(points)
    if n <= 1:
        return np.zeros(n + 1, dtype=np.int32), np.empty(0, dtype=np.int32)
    src, dst = _cell_candidates(points, radius)
    return _pairs_to_csr(src, dst, n)


def udg_csr_graph(points: np.ndarray, radius: float = 1.0) -> CSRGraph:
    """:func:`udg_csr` wrapped as a :class:`CSRGraph` with metadata."""
    points = np.ascontiguousarray(points, dtype=float)
    indptr, indices = udg_csr(points, radius=radius)
    return CSRGraph(
        indptr,
        indices,
        positions=points,
        meta={"family": "udg", "radius": float(radius)},
    )


def _csr_connected(indptr: np.ndarray, indices: np.ndarray) -> bool:
    """Connectivity over raw CSR arrays (no rng, like ``nx.is_connected``)."""
    n = len(indptr) - 1
    matrix = sp.csr_array(
        (np.ones(len(indices), dtype=np.int8), indices, indptr),
        shape=(n, n),
    )
    return int(csgraph.connected_components(matrix, directed=False)[0]) == 1


def random_udg_csr(
    n: int,
    side: float,
    rng: np.random.Generator,
    radius: float = 1.0,
    connected: bool = True,
    max_attempts: int = 200,
) -> CSRGraph:
    """Array-native :func:`repro.graphs.udg.random_udg`.

    Consumes the identical rng stream (one ``rng.uniform`` draw per
    attempt, nothing else) and yields the identical edge set, so a
    seeded corpus build reproduces the reference generator bit for
    bit — including the number of connectivity retries.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    for _ in range(max_attempts):
        points = rng.uniform(0.0, side, size=(n, 2))
        indptr, indices = udg_csr(points, radius=radius)
        if not connected or n == 1 or _csr_connected(indptr, indices):
            return CSRGraph(
                indptr,
                indices,
                positions=points,
                meta={
                    "family": "udg",
                    "radius": float(radius),
                    "side": float(side),
                },
            )
    raise ValueError(
        f"could not sample a connected UDG with n={n}, side={side}, "
        f"radius={radius} in {max_attempts} attempts; increase density"
    )


def grid_udg_csr(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    spacing: float = 0.9,
    jitter: float = 0.05,
    radius: float = 1.0,
) -> CSRGraph:
    """Array-native :func:`repro.graphs.udg.grid_udg`.

    Same meshgrid layout, same single ``rng.uniform`` jitter draw, same
    (fixed) jitter bound — see
    :func:`repro.graphs.udg.check_grid_jitter`.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
    check_grid_jitter(jitter, spacing, radius)
    xs, ys = np.meshgrid(np.arange(cols), np.arange(rows))
    base = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(float) * spacing
    noise = rng.uniform(-jitter, jitter, size=base.shape)
    points = base + noise
    indptr, indices = udg_csr(points, radius=radius)
    return CSRGraph(
        indptr,
        indices,
        positions=points,
        meta={"family": "grid-udg", "radius": float(radius)},
    )


def qudg_csr_graph(
    points: np.ndarray,
    r: float,
    R: float,
    rng: np.random.Generator,
    annulus_rule: AnnulusRule | None = None,
) -> CSRGraph:
    """Array-native :func:`repro.graphs.quasi_udg.qudg_from_points`.

    Candidate pairs come from the cell grid at reach ``R``; hard edges
    (``d <= r``) are kept wholesale, annulus pairs are put to the rule
    one by one **in sorted (u, v) order**. Deterministic rules match
    the reference's edge set exactly; stochastic rules draw in this
    order rather than the reference's set-iteration order (see the
    module docstring).
    """
    if not 0 < r <= R:
        raise ValueError(f"need 0 < r <= R, got r={r}, R={R}")
    points = np.ascontiguousarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(
            f"expected an (n, 2) point array, got {points.shape}"
        )
    if annulus_rule is None:
        annulus_rule = bernoulli_rule(0.5)
    n = len(points)
    meta = {"family": "quasi-udg", "r": float(r), "R": float(R)}
    if n <= 1:
        return CSRGraph(
            np.zeros(n + 1, dtype=np.int32),
            np.empty(0, dtype=np.int32),
            positions=points,
            meta=meta,
        )

    src, dst = _cell_candidates(points, R)
    upper = src < dst
    src, dst = src[upper], dst[upper]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    diff = points[src] - points[dst]
    # The reference computes ``np.linalg.norm`` per pair and compares
    # the *distance* (not its square) against ``r``; mirror that.
    dist = np.sqrt(diff[:, 0] ** 2 + diff[:, 1] ** 2)
    hard = dist <= r
    annulus = np.flatnonzero(~hard)
    keep = hard.copy()
    for k in annulus:
        keep[k] = bool(
            annulus_rule(int(src[k]), int(dst[k]), float(dist[k]), rng)
        )
    both_src = np.concatenate([src[keep], dst[keep]])
    both_dst = np.concatenate([dst[keep], src[keep]])
    indptr, indices = _pairs_to_csr(both_src, both_dst, n)
    return CSRGraph(indptr, indices, positions=points, meta=meta)
