"""Shared-memory graph slabs: publish once, attach everywhere.

``run_trials_parallel`` used to pickle whole measures — graph included
— into every pool worker: at ``n = 10^6`` that is hundreds of MB
serialized per worker. Here the parent copies the CSR slabs (indptr,
indices, positions) into ``multiprocessing.shared_memory`` segments
**once**; what travels in each worker payload is a
:class:`SharedGraphHandle` — segment names, shapes, dtypes, and the
small metadata — a few hundred bytes regardless of graph size. Workers
:func:`attach` the segments as zero-copy ndarray views wrapped in a
:class:`~repro.corpus.graph.CSRGraph`, and the per-process attach
cache keeps one ``CSRGraph`` (and therefore one memoized
``GraphContext``) alive per segment set, so repeated trials in one
worker pay the attach exactly once.

Lifecycle (documented contract, exercised in ``tests/test_corpus.py``):

- the parent owns the segments: it publishes before fanning out and
  ``close()`` + ``unlink()`` in a ``finally`` once the pool drains —
  on Linux the memory persists until the last attached process
  closes, so unlinking while workers still hold views is safe;
- workers deliberately *unregister* their attachment from
  ``multiprocessing.resource_tracker``: on Python < 3.13 the tracker
  assumes every opener owns the segment and would unlink it (with a
  spurious leak warning) when the first worker exits;
- if the parent crashes before its ``finally``, its resource tracker
  unlinks the leaked segments at interpreter teardown (the standard
  library's crash net), at the price of a "leaked shared_memory"
  warning; a kill -9 of the whole tree leaves the segment to
  ``/dev/shm`` until reboot — the one hole mmap-backed corpus entries
  do not have.
"""

from __future__ import annotations

import dataclasses
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from .graph import CSRGraph

__all__ = ["SharedGraph", "SharedGraphHandle", "attach"]

#: Per-process cache of attached graphs, keyed by segment names. Holds
#: strong references on purpose: a pool worker lives exactly as long
#: as its pool, and caching the CSRGraph keeps its memoized
#: GraphContext (degrees, diameter, greedy MIS) warm across trials.
_ATTACHED: dict[tuple[str, ...], CSRGraph] = {}

#: Segment names this process (or, after fork, an ancestor) published.
#: Attaching to one of these must NOT unregister it from the resource
#: tracker: fork workers share the publisher's tracker, and the one
#: registration the publisher made is what its ``unlink`` retires.
_PUBLISHED: set[str] = set()


@dataclasses.dataclass(frozen=True)
class SharedGraphHandle:
    """Picklable description of a published graph (no array payload)."""

    segments: tuple[tuple[str, str, tuple[int, ...], str], ...]
    """``(field, segment_name, shape, dtype_str)`` per shared array."""

    meta: tuple[tuple[str, Any], ...]
    """The graph's metadata dict, as sorted items (hashable/frozen)."""

    invariants: tuple[tuple[str, Any], ...]
    """Scalar invariants (connected, diameter) forwarded to workers."""


def _new_segment(arr: np.ndarray) -> tuple[shared_memory.SharedMemory, str]:
    size = max(1, arr.nbytes)  # zero-size segments are refused by the OS
    shm = shared_memory.SharedMemory(create=True, size=size)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    _PUBLISHED.add(shm.name)
    return shm, shm.name


class SharedGraph:
    """Parent-side owner of one published graph's segments.

    Usable as a context manager; exit closes *and unlinks*. The
    :attr:`handle` is what worker payloads carry.
    """

    def __init__(
        self,
        segments: list[shared_memory.SharedMemory],
        handle: SharedGraphHandle,
    ) -> None:
        self._segments = segments
        self.handle = handle

    @classmethod
    def publish(cls, graph: CSRGraph) -> "SharedGraph":
        """Copy ``graph``'s arrays into fresh shared-memory segments."""
        arrays: list[tuple[str, np.ndarray]] = [
            ("indptr", graph.indptr),
            ("indices", graph.indices),
        ]
        if graph.positions is not None:
            arrays.append(
                ("positions", np.asarray(graph.positions, np.float64))
            )
        segments = []
        described = []
        try:
            for field, arr in arrays:
                shm, name = _new_segment(arr)
                segments.append(shm)
                described.append(
                    (field, name, tuple(arr.shape), str(arr.dtype))
                )
        except Exception:  # pragma: no cover - OS-level alloc failure
            for shm in segments:
                shm.close()
                shm.unlink()
            raise
        scalars = tuple(
            sorted(
                (k, v)
                for k, v in graph.invariants.items()
                if isinstance(v, (bool, int, float, str))
            )
        )
        handle = SharedGraphHandle(
            segments=tuple(described),
            meta=tuple(sorted(graph.graph.items())),
            invariants=scalars,
        )
        return cls(segments, handle)

    def close(self) -> None:
        """Drop the parent's own mappings (segments stay alive)."""
        for shm in self._segments:
            shm.close()

    def unlink(self) -> None:
        """Remove the segments; attached workers keep their views."""
        for shm in self._segments:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
            _PUBLISHED.discard(shm.name)

    def __enter__(self) -> "SharedGraph":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        self.unlink()


def attach(handle: SharedGraphHandle) -> CSRGraph:
    """Worker-side: the published graph as zero-copy views (cached).

    Safe to call repeatedly — one attachment per segment set per
    process. The returned graph's ``source`` is ``"shm"``.
    """
    key = tuple(name for _field, name, _shape, _dtype in handle.segments)
    cached = _ATTACHED.get(key)
    if cached is not None:
        return cached
    fields: dict[str, np.ndarray] = {}
    segments = []
    for field, name, shape, dtype in handle.segments:
        shm = shared_memory.SharedMemory(name=name)
        if name not in _PUBLISHED:
            try:
                # The tracker treats every attachment as ownership and
                # would unlink the segment when this worker exits; only
                # the publishing parent owns cleanup. (Python 3.13's
                # ``track=False`` makes this official; this is the
                # documented workaround for 3.11/3.12.) Skipped when
                # this process *is* the publisher — fork workers share
                # the publisher's tracker, whose single registration
                # must survive until the publisher unlinks.
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - non-posix trackers
                pass
        segments.append(shm)
        fields[field] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf
        )
    graph = CSRGraph(
        fields["indptr"],
        fields["indices"],
        positions=fields.get("positions"),
        meta=dict(handle.meta),
        invariants=dict(handle.invariants),
        source="shm",
    )
    # The views borrow the segments' buffers; pin the SharedMemory
    # objects to the graph so neither is collected under the other.
    graph._shm_segments = segments  # type: ignore[attr-defined]
    _ATTACHED[key] = graph
    return graph
