"""``CSRGraph``: an array-native graph the rest of the repo can run on.

The corpus layer's in-memory form: a symmetric int32 CSR adjacency
(``indptr``/``indices``), optional point positions, the same metadata
dict networkx graphs carry (``graph.graph["family"]`` etc.), and any
cached invariants that came with it from the store. The arrays may be
plain ndarrays, ``np.memmap`` views over a corpus entry, or views over
``multiprocessing.shared_memory`` segments — a ``CSRGraph`` never
copies them.

The class duck-types exactly the slice of the networkx surface the
pipeline consumes (``number_of_nodes``, ``number_of_edges``,
``is_directed``, ``nodes``, ``neighbors``, ``degree``, ``edges``, the
``.graph`` attribute dict, weakref-ability), plus ``csr_arrays()`` —
the marker method :class:`~repro.graphs.context.GraphContext` detects
to adopt the arrays directly instead of converting through networkx.
Nodes are always ``0..n-1``; corpus graphs are identity-labeled by
construction.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

__all__ = ["CSRGraph"]


class CSRGraph:
    """Zero-copy CSR graph over caller-owned arrays.

    Parameters
    ----------
    indptr, indices:
        Symmetric CSR adjacency, int32, ``len(indptr) == n + 1``. Held
        by reference — memmap and shared-memory views stay zero-copy.
    positions:
        Optional ``(n, 2)`` float64 point coordinates (UDG families).
    meta:
        Metadata dict, exposed as :attr:`graph` (the networkx
        convention): ``family``, ``radius``, and for stored graphs the
        content ``digest``.
    invariants:
        Cached invariants from the store (``diameter``, ``connected``,
        ``mis``); :class:`~repro.graphs.context.GraphContext` seeds its
        lazy caches from these instead of recomputing.
    source:
        Where the arrays live: ``"memory"`` (freshly generated),
        ``"mmap"`` (corpus entry on disk), or ``"shm"`` (attached
        shared-memory segments) — recorded in run provenance.
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        positions: np.ndarray | None = None,
        meta: dict[str, Any] | None = None,
        invariants: dict[str, Any] | None = None,
        source: str = "memory",
    ) -> None:
        indptr = np.asarray(indptr)
        indices = np.asarray(indices)
        if indptr.ndim != 1 or indptr.size < 1:
            raise ValueError("indptr must be a 1-d array of length n+1")
        if indptr.dtype != np.int32 or indices.dtype != np.int32:
            raise ValueError(
                "corpus CSR arrays must be int32, got "
                f"indptr={indptr.dtype}, indices={indices.dtype}"
            )
        if int(indptr[-1]) != len(indices):
            raise ValueError(
                f"indptr[-1]={int(indptr[-1])} does not match "
                f"len(indices)={len(indices)}"
            )
        self.indptr = indptr
        self.indices = indices
        self.positions = positions
        self.graph: dict[str, Any] = dict(meta or {})
        self.invariants: dict[str, Any] = dict(invariants or {})
        self.source = source
        self._n = len(indptr) - 1

    # -- the networkx slice the pipeline consumes -----------------------

    def number_of_nodes(self) -> int:
        """Node count ``n`` (nodes are always ``0..n-1``)."""
        return self._n

    def number_of_edges(self) -> int:
        """Undirected edge count (half the directed CSR entries)."""
        return len(self.indices) // 2

    def is_directed(self) -> bool:
        """Always ``False`` — corpus graphs are symmetric by format."""
        return False

    @property
    def nodes(self) -> range:
        return range(self._n)

    def neighbors(self, v: int) -> Iterator[int]:
        """Iterate ``v``'s neighbors in sorted order (CSR row slice)."""
        start, stop = self.indptr[v], self.indptr[v + 1]
        return iter(self.indices[start:stop].tolist())

    def degree(self, v: int) -> int:
        """Degree of node ``v`` — the CSR row width."""
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def edges(self) -> Iterator[tuple[int, int]]:
        return (
            (u, w)
            for u in range(self._n)
            for w in self.indices[
                self.indptr[u] : self.indptr[u + 1]
            ].tolist()
            if u < w
        )

    def __len__(self) -> int:
        return self._n

    def __contains__(self, v: object) -> bool:
        return isinstance(v, (int, np.integer)) and 0 <= int(v) < self._n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._n))

    # -- array-native surface -------------------------------------------

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(indptr, indices)`` pair, by reference (never a copy).

        This method doubles as the marker
        :class:`~repro.graphs.context.GraphContext` detects: any object
        providing it is adopted array-natively.
        """
        return self.indptr, self.indices

    def to_networkx(self):
        """Materialize as a real ``networkx.Graph`` (copies, O(n + m)).

        The escape hatch for graph-accepting protocols (``broadcast``,
        ``leader``, ``partition``) and anything else that needs full
        networkx semantics.
        """
        import networkx as nx

        graph = nx.Graph(**self.graph)
        graph.add_nodes_from(range(self._n))
        src = np.repeat(
            np.arange(self._n, dtype=np.int64), np.diff(self.indptr)
        )
        mask = src < self.indices
        graph.add_edges_from(
            zip(src[mask].tolist(), self.indices[mask].tolist())
        )
        if self.positions is not None:
            for v in range(self._n):
                graph.nodes[v]["pos"] = tuple(self.positions[v])
        return graph

    def __repr__(self) -> str:
        family = self.graph.get("family", "graph")
        return (
            f"CSRGraph({family!r}, n={self._n}, "
            f"m={self.number_of_edges()}, source={self.source!r})"
        )
