"""Deterministic round-robin broadcast (the trivial deterministic baseline).

The simplest deterministic broadcast that works on every graph: nodes
take turns by ID — in step ``t``, the unique node with ``ID = t mod n``
transmits iff it knows the message. One full rotation pushes the
message at least one hop (the informed frontier contains some node
whose turn comes up, and single transmitters never collide), so the
message covers the graph in ``O(n D)`` steps.

Serious deterministic algorithms (Kowalski's ``O(n log D)``, paper
Section 1.5.1) beat this with selective families; round-robin is here
as the floor every deterministic scheme must beat, and as the only
*collision-free-by-construction* comparator, which makes it useful in
tests (its behavior is exactly predictable).

Unlike the ad-hoc randomized algorithms, round-robin needs unique IDs
in ``[n]`` — the standard extra assumption for deterministic radio
broadcast, granted to the baseline but not to the paper's algorithms.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..radio.errors import BudgetExceededError, GraphContractError
from ..radio.network import RadioNetwork


@dataclasses.dataclass
class RoundRobinResult:
    """Outcome of a deterministic round-robin broadcast."""

    source: int
    delivered: bool
    steps: int
    rotations: int


def round_robin_broadcast(
    network: RadioNetwork,
    source: int,
    max_rotations: int | None = None,
) -> RoundRobinResult:
    """Broadcast deterministically by taking turns in ID order.

    Parameters
    ----------
    network:
        A connected radio network; internal indices serve as the IDs.
    source:
        Index of the initially informed node.
    max_rotations:
        Budget in full rotations; defaults to ``n + 1`` (the diameter is
        at most ``n - 1``, and each rotation gains a hop).
    """
    if not network.is_connected():
        raise GraphContractError("broadcast requires a connected network")
    n = network.n
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    if max_rotations is None:
        max_rotations = n + 1

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    steps_before = network.steps_elapsed
    network.trace.enter_phase("round-robin")
    rotations = 0
    while not informed.all():
        if rotations >= max_rotations:
            raise BudgetExceededError(
                f"round-robin broadcast incomplete after {max_rotations} "
                "rotations — is the graph connected?"
            )
        # One rotation = n steps, executed as a single batched window.
        # The masks are deterministic but *cascading*: a node informed at
        # an earlier turn of the same rotation transmits when its own
        # turn comes up. Because step ``t`` has at most one transmitter
        # (node ``t``), its receptions are exactly ``t``'s neighbors, so
        # the cascade can be computed exactly by a cheap forward scan
        # before any step executes; the simulator then realizes all n
        # steps in one sparse product. A time-step elapses whether or
        # not the scheduled node has anything to say — deterministic
        # schedules cannot skip silent turns (nobody else knows the turn
        # went unused).
        masks = np.zeros((n, n), dtype=bool)
        scan = informed.copy()
        for turn in range(n):
            if scan[turn]:
                masks[turn, turn] = True
                scan[network.neighbors_of(turn)] = True
        network.deliver_window(masks)
        # Single transmitters never collide, so every neighbor of a
        # transmitting turn hears: `scan` already *is* the post-rotation
        # informed set (the window call realizes the steps for the
        # trace and step accounting).
        informed = scan
        rotations += 1
    network.trace.enter_phase("default")
    return RoundRobinResult(
        source=source,
        delivered=bool(informed.all()),
        steps=network.steps_elapsed - steps_before,
        rotations=rotations,
    )
