"""Deterministic round-robin broadcast (the trivial deterministic baseline).

The simplest deterministic broadcast that works on every graph: nodes
take turns by ID — in step ``t``, the unique node with ``ID = t mod n``
transmits iff it knows the message. One full rotation pushes the
message at least one hop (the informed frontier contains some node
whose turn comes up, and single transmitters never collide), so the
message covers the graph in ``O(n D)`` steps.

Serious deterministic algorithms (Kowalski's ``O(n log D)``, paper
Section 1.5.1) beat this with selective families; round-robin is here
as the floor every deterministic scheme must beat, and as the only
*collision-free-by-construction* comparator, which makes it useful in
tests (its behavior is exactly predictable).

Unlike the ad-hoc randomized algorithms, round-robin needs unique IDs
in ``[n]`` — the standard extra assumption for deterministic radio
broadcast, granted to the baseline but not to the paper's algorithms.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..radio.errors import BudgetExceededError, GraphContractError
from ..radio.network import NO_SENDER, RadioNetwork


@dataclasses.dataclass
class RoundRobinResult:
    """Outcome of a deterministic round-robin broadcast."""

    source: int
    delivered: bool
    steps: int
    rotations: int


def round_robin_broadcast(
    network: RadioNetwork,
    source: int,
    max_rotations: int | None = None,
) -> RoundRobinResult:
    """Broadcast deterministically by taking turns in ID order.

    Parameters
    ----------
    network:
        A connected radio network; internal indices serve as the IDs.
    source:
        Index of the initially informed node.
    max_rotations:
        Budget in full rotations; defaults to ``n + 1`` (the diameter is
        at most ``n - 1``, and each rotation gains a hop).
    """
    if not network.is_connected():
        raise GraphContractError("broadcast requires a connected network")
    n = network.n
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    if max_rotations is None:
        max_rotations = n + 1

    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    steps_before = network.steps_elapsed
    network.trace.enter_phase("round-robin")
    rotations = 0
    while not informed.all():
        if rotations >= max_rotations:
            raise BudgetExceededError(
                f"round-robin broadcast incomplete after {max_rotations} "
                "rotations — is the graph connected?"
            )
        for turn in range(n):
            # A time-step elapses whether or not the scheduled node has
            # anything to say — deterministic schedules cannot skip
            # silent turns (nobody else knows the turn went unused).
            transmit = np.zeros(n, dtype=bool)
            transmit[turn] = informed[turn]
            hear_from = network.deliver(transmit)
            informed |= hear_from != NO_SENDER
        rotations += 1
    network.trace.enter_phase("default")
    return RoundRobinResult(
        source=source,
        delivered=bool(informed.all()),
        steps=network.steps_elapsed - steps_before,
        rotations=rotations,
    )
