"""The Bar-Yehuda–Goldreich–Itai Decay broadcast baseline (packet level).

The seminal randomized broadcast for radio networks (paper Section
1.5.1): every node that knows the message participates in repeated Decay
sweeps; listeners that hear join the informed set. Completes in
``O(D log n + log^2 n)`` steps with high probability — the bound the
paper's ``O(D log_D alpha + polylog n)`` improves on whenever
``log_D alpha = o(log n)``.

Because this baseline is simple enough to simulate packet-by-packet at
every scale we benchmark, it anchors the E6 comparison: our pipeline's
*charged* rounds versus BGI's *actually simulated* steps, both against
their respective claimed shapes.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..radio.errors import BudgetExceededError, GraphContractError
from ..radio.network import NO_SENDER, RadioNetwork
from ..core.decay import decay_span


@dataclasses.dataclass
class BGIBroadcastResult:
    """Outcome of a packet-level BGI broadcast."""

    source: int
    delivered: bool
    steps: int
    sweeps: int
    informed_history: list[int]


def bgi_broadcast(
    network: RadioNetwork,
    source: int,
    rng: np.random.Generator,
    sources: list[int] | None = None,
    max_sweeps: int | None = None,
) -> BGIBroadcastResult:
    """Broadcast ``source``'s message with repeated Decay sweeps.

    Parameters
    ----------
    network:
        The radio network (must be connected).
    source:
        Index of the source node (ignored if ``sources`` is given).
    rng:
        Randomness source.
    sources:
        Optional multiple sources (multi-source broadcast, used by the
        binary-search leader election baseline).
    max_sweeps:
        Safety budget in Decay sweeps; defaults to
        ``8 * (D-proxy) + 16 log n`` sweeps where the D-proxy is ``n``
        (the ad-hoc algorithm does not need D; the budget is only a
        simulation guard).

    Returns
    -------
    BGIBroadcastResult
        ``steps`` counts actual simulated radio steps.
    """
    if not network.is_connected():
        raise GraphContractError("broadcast requires a connected network")
    n = network.n
    informed = np.zeros(n, dtype=bool)
    for s in sources if sources is not None else [source]:
        informed[int(s)] = True
    span = decay_span(n)
    if max_sweeps is None:
        max_sweeps = 8 * n + 16 * max(1, math.ceil(math.log2(max(2, n))))

    steps_before = network.steps_elapsed
    network.trace.enter_phase("bgi-broadcast")
    history = [int(informed.sum())]
    sweeps = 0
    while not informed.all():
        if sweeps >= max_sweeps:
            raise BudgetExceededError(
                f"BGI broadcast did not complete within {max_sweeps} sweeps"
            )
        for i in range(1, span + 1):
            coins = rng.random(n) < 2.0**-i
            hear_from = network.deliver(informed & coins)
            informed |= hear_from != NO_SENDER
        sweeps += 1
        history.append(int(informed.sum()))
    network.trace.enter_phase("default")

    return BGIBroadcastResult(
        source=source,
        delivered=bool(informed.all()),
        steps=network.steps_elapsed - steps_before,
        sweeps=sweeps,
        informed_history=history,
    )
