"""The Bar-Yehuda–Goldreich–Itai Decay broadcast baseline (packet level).

The seminal randomized broadcast for radio networks (paper Section
1.5.1): every node that knows the message participates in repeated Decay
sweeps; listeners that hear the message join the informed set at the
next sweep boundary (BGI's sweeps are synchronized — a Decay sweep runs
over a set fixed for the whole sweep, exactly as Algorithm 5 is
stated). Completes in ``O(D log n + log^2 n)`` steps with high
probability — the bound the paper's ``O(D log_D alpha + polylog n)``
improves on whenever ``log_D alpha = o(log n)``.

Because this baseline is simple enough to simulate packet-by-packet at
every scale we benchmark, it anchors the E6 comparison: our pipeline's
*charged* rounds versus BGI's *actually simulated* steps, both against
their respective claimed shapes.

Engine migration: sweep synchronization makes each sweep an *oblivious
window* — its ``log n`` masks are the frozen informed set gated by
fresh coins — and the informed-set update at the sweep boundary is the
decision point. :func:`bgi_schedule` emits exactly that structure;
:func:`bgi_broadcast` runs it on the windowed engine (one sparse
matrix-matrix product per sweep), and :func:`bgi_broadcast_reference`
retains the step-wise drive of the same semantics. Seeded runs of the
two are bit-identical — results, step counts, trace totals, and rng
stream.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..core.decay import decay_span
from ..engine.policy import ExecutionPolicy, legacy_policy
from ..engine.segments import ObliviousWindow, ProtocolSchedule, TracePhase
from ..radio.errors import BudgetExceededError, GraphContractError
from ..radio.network import NO_SENDER, RadioNetwork


@dataclasses.dataclass
class BGIBroadcastResult:
    """Outcome of a packet-level BGI broadcast."""

    source: int
    delivered: bool
    steps: int
    sweeps: int
    informed_history: list[int]


def _initial_informed(
    network: RadioNetwork, source: int, sources: list[int] | None
) -> tuple[np.ndarray, int]:
    if not network.is_connected():
        raise GraphContractError("broadcast requires a connected network")
    informed = np.zeros(network.n, dtype=bool)
    for s in sources if sources is not None else [source]:
        informed[int(s)] = True
    return informed, network.n


def _default_max_sweeps(n: int) -> int:
    """Safety budget: ``8 * (D-proxy) + 16 log n`` sweeps with D-proxy
    ``n`` (the ad-hoc algorithm does not need D; this only guards the
    simulation)."""
    return 8 * n + 16 * max(1, math.ceil(math.log2(max(2, n))))


def bgi_schedule(
    network: RadioNetwork,
    source: int,
    rng: np.random.Generator,
    sources: list[int] | None = None,
    max_sweeps: int | None = None,
    best_effort: bool = False,
) -> ProtocolSchedule:
    """Schedule emitter for BGI broadcast.

    One :class:`~repro.engine.segments.ObliviousWindow` per Decay sweep
    (the informed set is frozen for the sweep), one informed-set update
    per sweep boundary. Returns the :class:`BGIBroadcastResult`.
    """
    informed, n = _initial_informed(network, source, sources)
    span = decay_span(n)
    probs = 2.0 ** -(np.arange(1, span + 1, dtype=np.float64))
    if max_sweeps is None:
        max_sweeps = _default_max_sweeps(n)

    steps_before = network.steps_elapsed
    yield TracePhase("bgi-broadcast")
    history = [int(informed.sum())]
    sweeps = 0
    while not informed.all():
        if sweeps >= max_sweeps:
            if best_effort:
                break
            raise BudgetExceededError(
                f"BGI broadcast did not complete within {max_sweeps} sweeps"
            )
        coins = rng.random((span, n)) < probs[:, None]
        masks = informed[None, :] & coins
        hear_window = yield ObliviousWindow(masks)
        informed |= (hear_window != NO_SENDER).any(axis=0)
        sweeps += 1
        history.append(int(informed.sum()))
    yield TracePhase("default")

    return BGIBroadcastResult(
        source=source,
        delivered=bool(informed.all()),
        steps=network.steps_elapsed - steps_before,
        sweeps=sweeps,
        informed_history=history,
    )


def bgi_broadcast(
    network: RadioNetwork,
    source: int,
    rng: np.random.Generator,
    sources: list[int] | None = None,
    max_sweeps: int | None = None,
    engine: str | None = None,
    *,
    best_effort: bool = False,
    policy: ExecutionPolicy | None = None,
) -> BGIBroadcastResult:
    """Broadcast ``source``'s message with repeated Decay sweeps.

    Parameters
    ----------
    network:
        The radio network (must be connected).
    source:
        Index of the source node (ignored if ``sources`` is given).
    rng:
        Randomness source.
    sources:
        Optional multiple sources (multi-source broadcast, used by the
        binary-search leader election baseline).
    max_sweeps:
        Safety budget in Decay sweeps; see :func:`_default_max_sweeps`.
    best_effort:
        Exhausting the sweep budget returns ``delivered=False`` instead
        of raising — the mode fault-tolerant callers need, since a
        crashed node makes all-informed completion unreachable.
    policy:
        Execution policy. ``engine="windowed"`` (the ``"auto"``
        default) executes one sparse product per sweep;
        ``"reference"`` steps through :func:`bgi_broadcast_reference`.
        Seeded results are bit-identical.
    engine:
        Deprecated per-call form of ``policy.engine`` (shimmed).

    Returns
    -------
    BGIBroadcastResult
        ``steps`` counts actual simulated radio steps.
    """
    policy = legacy_policy(policy, "bgi_broadcast", engine=engine)
    policy.bind(network)
    if policy.engine_for(("windowed", "reference"), "windowed") == "reference":
        return bgi_broadcast_reference(
            network, source, rng, sources=sources, max_sweeps=max_sweeps,
            best_effort=best_effort,
        )
    return policy.run_schedule(
        network,
        bgi_schedule(
            network, source, rng, sources=sources, max_sweeps=max_sweeps,
            best_effort=best_effort,
        ),
    )


def bgi_broadcast_reference(
    network: RadioNetwork,
    source: int,
    rng: np.random.Generator,
    sources: list[int] | None = None,
    max_sweeps: int | None = None,
    best_effort: bool = False,
) -> BGIBroadcastResult:
    """Step-wise BGI broadcast: the executable specification.

    Same sweep-synchronized semantics as :func:`bgi_schedule` — the
    informed set is frozen per sweep, updated at sweep boundaries — one
    :meth:`~repro.radio.network.RadioNetwork.deliver` call per step.
    """
    informed, n = _initial_informed(network, source, sources)
    span = decay_span(n)
    if max_sweeps is None:
        max_sweeps = _default_max_sweeps(n)

    steps_before = network.steps_elapsed
    network.trace.enter_phase("bgi-broadcast")
    history = [int(informed.sum())]
    sweeps = 0
    while not informed.all():
        if sweeps >= max_sweeps:
            if best_effort:
                break
            raise BudgetExceededError(
                f"BGI broadcast did not complete within {max_sweeps} sweeps"
            )
        frozen = informed.copy()
        newly = np.zeros(n, dtype=bool)
        for i in range(1, span + 1):
            coins = rng.random(n) < 2.0**-i
            hear_from = network.deliver(frozen & coins)
            newly |= hear_from != NO_SENDER
        informed |= newly
        sweeps += 1
        history.append(int(informed.sum()))
    network.trace.enter_phase("default")

    return BGIBroadcastResult(
        source=source,
        delivered=bool(informed.all()),
        steps=network.steps_elapsed - steps_before,
        sweeps=sweeps,
        informed_history=history,
    )
