"""Deterministic broadcast *with collision detection* (energy coding).

The paper's algorithms work without collision detection; parts of the
prior geometric literature (Schneider–Wattenhofer [29], Dessmark–Pelc
[12]) assume it. This baseline shows concretely what the assumption
buys: with CD, a listener can read one bit per two steps from pure
*energy*, no clean reception needed, so collisions stop mattering and
broadcast becomes deterministic and contention-free.

Encoding: the ``B``-bit message is transmitted in cycles of ``B``
frames, each frame two steps (subslot 0 and subslot 1). Every informed
node transmits (anything) in the subslot matching the current message
bit. A listener with CD senses energy in exactly one subslot per frame
— that subslot *is* the bit; energy in neither subslot means no
informed neighbor yet. Nodes that heard energy through a *complete*
cycle decode the message and join the transmitters for the next cycle.

One cycle advances the informed frontier by at least one hop, so the
total is ``O(D * B)`` steps — with ``B = Theta(log n)``-bit messages,
the ``O(D log n)`` deterministic-with-CD bound of [29], versus the
``Omega(n log_{n/D} D)`` deterministic lower bound *without* CD that
the paper quotes. E13 measures the gap.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..radio.errors import BudgetExceededError, GraphContractError
from ..radio.network import RadioNetwork


@dataclasses.dataclass
class CDBroadcastResult:
    """Outcome of the collision-detection broadcast."""

    source: int
    delivered: bool
    steps: int
    cycles: int
    message_bits: int


def cd_broadcast(
    network: RadioNetwork,
    source: int,
    message: int | None = None,
    message_bits: int | None = None,
    max_cycles: int | None = None,
) -> CDBroadcastResult:
    """Deterministically broadcast ``message`` using collision detection.

    Parameters
    ----------
    network:
        A connected radio network.
    source:
        The initially informed node.
    message:
        The payload; defaults to ``source + 1`` (a typical ID payload).
    message_bits:
        Encoded length; defaults to ``max(1, ceil(log2(n)) + 1)`` —
        enough for any node ID.
    max_cycles:
        Budget in frame cycles; defaults to ``n + 1`` (each cycle gains
        at least one hop and ``D <= n - 1``).
    """
    if not network.is_connected():
        raise GraphContractError("broadcast requires a connected network")
    n = network.n
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range for n={n}")
    if message is None:
        message = source + 1
    if message_bits is None:
        message_bits = max(1, math.ceil(math.log2(max(2, n))) + 1)
    if message < 0 or message >= 2**message_bits:
        raise ValueError(
            f"message {message} does not fit in {message_bits} bits"
        )
    if max_cycles is None:
        max_cycles = n + 1

    bits = [(message >> (message_bits - 1 - i)) & 1 for i in range(message_bits)]
    informed = np.zeros(n, dtype=bool)
    informed[source] = True

    steps_before = network.steps_elapsed
    network.trace.enter_phase("cd-broadcast")
    cycles = 0
    while not informed.all():
        if cycles >= max_cycles:
            raise BudgetExceededError(
                f"CD broadcast incomplete after {max_cycles} cycles"
            )
        # Per-listener decode state for this cycle: the bits observed and
        # whether every frame so far carried energy.
        decoded = np.zeros((n, message_bits), dtype=np.int8)
        complete = np.ones(n, dtype=bool)
        for i, bit in enumerate(bits):
            for subslot in (0, 1):
                transmit = informed & (bit == subslot)
                _, busy = network.deliver_detect(transmit)
                if subslot == 0:
                    energy0 = busy
                else:
                    energy1 = busy
            saw_energy = energy0 | energy1
            decoded[energy1, i] = 1
            complete &= saw_energy | informed
        # Listeners that sensed energy through the whole cycle decode and
        # join. (The decoded value necessarily equals the message — all
        # transmitters carry the same payload in single-source broadcast;
        # we assert that invariant rather than assume it.)
        joiners = complete & ~informed
        for v in np.nonzero(joiners)[0]:
            value = 0
            for i in range(message_bits):
                value = (value << 1) | int(decoded[v, i])
            assert value == message, "energy decode mismatch"
        informed |= joiners
        cycles += 1
    network.trace.enter_phase("default")

    return CDBroadcastResult(
        source=source,
        delivered=bool(informed.all()),
        steps=network.steps_elapsed - steps_before,
        cycles=cycles,
        message_bits=message_bits,
    )
