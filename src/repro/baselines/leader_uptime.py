"""Uptime-threshold leader election: churn-robust binary search.

The robustness variant of :mod:`repro.baselines.leader_binary_search`
for networks under churn (:mod:`repro.faults`). Plain binary-search
election happily elects a node that was asleep for most of the run —
a useless leader. Here each node first checks its *own* uptime over
the declared horizon (a node knows when it was up; this is per-node
local state, exactly like its own coin flips — the vectorized read via
:func:`repro.faults.node_uptime_fractions` is simulator convenience)
and only nodes with uptime fraction at or above ``threshold``
self-select as candidates. The highest-ID *candidate* then wins the
usual binary search, each phase a packet-level multi-source BGI flood.

IDs are drawn for **all** nodes before masking the non-candidates, so
the rng stream — and therefore every downstream coin — is independent
of the threshold: sweeping ``threshold`` in a degradation experiment
changes only the candidate set, never the randomness. With no (or an
empty) fault schedule every node has uptime 1.0 and the election
degenerates to the plain baseline (same floods, same seeded winner).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.decay import decay_span
from ..engine.policy import ExecutionPolicy
from ..faults import node_uptime_fractions
from ..radio.errors import GraphContractError
from ..radio.network import RadioNetwork
from .bgi_broadcast import bgi_broadcast


@dataclasses.dataclass
class UptimeElectionResult:
    """Outcome of uptime-threshold leader election.

    ``elected`` is False when no node clears the uptime threshold
    (total churn collapse — the interesting end of the degradation
    curve) or on an ID tie; ``leader``/``leader_id`` are ``-1`` in the
    no-candidate case.
    """

    leader: int
    leader_id: int
    candidates: int
    phases: int
    steps: int
    elected: bool


def uptime_threshold_election(
    network: RadioNetwork,
    rng: np.random.Generator,
    threshold: float = 0.5,
    horizon: int | None = None,
    id_bits: int | None = None,
    flood_sweeps: int | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> UptimeElectionResult:
    """Elect the highest-ID node whose uptime clears ``threshold``.

    Parameters
    ----------
    network:
        A connected radio network; install the fault schedule first
        (``policy.bind`` does, and :func:`repro.api.run` always has).
    rng:
        Randomness source; draws ``Theta(log n)``-bit IDs for all
        nodes (threshold-independent stream, see module docstring).
    threshold:
        Minimum uptime fraction in ``[0, 1]`` to stand as a candidate.
    horizon:
        Step horizon the uptime fraction is measured over; defaults to
        the schedule's declared horizon, else ``64 * ceil(log2 n)``.
    id_bits:
        ID length; defaults to ``3 ceil(log2 n)`` (unique whp).
    flood_sweeps:
        Per-phase sweep budget of the BGI floods (best-effort: the
        flood stops there whether or not everyone heard — under
        faults a crashed node makes completion unreachable, and no
        real node can detect global completion anyway). Defaults to
        run-to-completion with no active fault schedule (exactly the
        plain baseline's floods) and ``4 * decay_span(n)`` under one.
    policy:
        Execution policy for the per-phase BGI floods; its ``faults``
        are installed on the network by the usual bind.
    """
    policy = policy or ExecutionPolicy()
    policy.bind(network)
    if not 0.0 <= threshold <= 1.0:
        raise ValueError(
            f"threshold must be an uptime fraction in [0, 1], "
            f"got {threshold}"
        )
    if not network.is_connected():
        raise GraphContractError("leader election requires connectivity")
    n = network.n
    if horizon is None:
        schedule = network.faults
        declared = schedule.horizon if schedule is not None else None
        horizon = (
            declared
            if declared is not None
            else 64 * max(1, int(np.ceil(np.log2(max(2, n)))))
        )
    if id_bits is None:
        id_bits = 3 * max(2, int(np.ceil(np.log2(max(2, n)))))
    if flood_sweeps is None and network._fault_state is not None:
        flood_sweeps = 4 * decay_span(n)

    ids = rng.integers(0, 2**id_bits, size=n)
    candidates = node_uptime_fractions(network, horizon) >= threshold
    ids = np.where(candidates, ids, -1)
    n_candidates = int(candidates.sum())
    if n_candidates == 0:
        return UptimeElectionResult(
            leader=-1, leader_id=-1, candidates=0,
            phases=0, steps=0, elected=False,
        )

    lo, hi = 0, 2**id_bits - 1
    steps_before = network.steps_elapsed
    phases = 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        upper = [int(v) for v in np.nonzero(ids >= mid)[0]]
        phases += 1
        if upper:
            bgi_broadcast(
                network, upper[0], rng, sources=upper,
                max_sweeps=flood_sweeps,
                best_effort=flood_sweeps is not None,
                policy=policy,
            )
            lo = mid
        else:
            hi = mid - 1

    winners = np.nonzero(ids == lo)[0]
    leader = int(winners[0])
    return UptimeElectionResult(
        leader=leader,
        leader_id=int(lo),
        candidates=n_candidates,
        phases=phases,
        steps=network.steps_elapsed - steps_before,
        elected=len(winners) == 1,
    )


def uptime_threshold_election_reference(
    network: RadioNetwork,
    rng: np.random.Generator,
    threshold: float = 0.5,
    horizon: int | None = None,
    id_bits: int | None = None,
    flood_sweeps: int | None = None,
) -> UptimeElectionResult:
    """Step-wise uptime election (BGI floods on the reference delivery
    path); the fault-twin suite pins the windowed run against it
    bit-for-bit under shared schedules (install the schedule on the
    network before calling)."""
    return uptime_threshold_election(
        network, rng, threshold=threshold, horizon=horizon,
        id_bits=id_bits, flood_sweeps=flood_sweeps,
        policy=ExecutionPolicy(engine="reference"),
    )
