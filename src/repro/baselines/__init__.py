"""Prior-work comparators: simulated and analytic baselines."""

from .analytic import (
    bgi_bound,
    broadcast_lower_bound,
    czumaj_davies_bound,
    czumaj_rytter_bound,
    ghaffari_haeupler_le_bound,
    mis_lower_bound,
    mis_paper_bound,
    paper_bound,
    spontaneous_lower_bound,
)
from .bgi_broadcast import (
    BGIBroadcastResult,
    bgi_broadcast,
    bgi_broadcast_reference,
    bgi_schedule,
)
from .cd_broadcast import CDBroadcastResult, cd_broadcast
from .leader_binary_search import (
    BinarySearchElectionResult,
    binary_search_election,
    binary_search_election_reference,
)
from .leader_uptime import (
    UptimeElectionResult,
    uptime_threshold_election,
    uptime_threshold_election_reference,
)
from .luby_local import LubyResult, luby_mis
from .round_robin import RoundRobinResult, round_robin_broadcast

__all__ = [
    "RoundRobinResult",
    "round_robin_broadcast",
    "BGIBroadcastResult",
    "BinarySearchElectionResult",
    "CDBroadcastResult",
    "cd_broadcast",
    "LubyResult",
    "UptimeElectionResult",
    "bgi_bound",
    "bgi_broadcast",
    "bgi_broadcast_reference",
    "bgi_schedule",
    "binary_search_election",
    "binary_search_election_reference",
    "broadcast_lower_bound",
    "czumaj_davies_bound",
    "czumaj_rytter_bound",
    "ghaffari_haeupler_le_bound",
    "luby_mis",
    "mis_lower_bound",
    "mis_paper_bound",
    "paper_bound",
    "spontaneous_lower_bound",
    "uptime_threshold_election",
    "uptime_threshold_election_reference",
]
