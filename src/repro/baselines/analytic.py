"""Analytic round-count formulas for prior work and lower bounds.

The E6/E7 benchmark tables include columns for algorithms whose full
simulation is out of scope (their machinery is substantial and *not*
what the paper changes); per DESIGN.md substitution 1 they appear as
their published bounds with unit constants. Everything here is a pure
formula — no simulation — and each function cites its source.

Simulated comparators live elsewhere: BGI broadcast
(:mod:`repro.baselines.bgi_broadcast`) and binary-search leader election
(:mod:`repro.baselines.leader_binary_search`) are packet-level, and the
[7] Compete baseline is the same round-accounted pipeline as the paper's
algorithm with ``centers_mode="all"``.
"""

from __future__ import annotations

import math


def _log2(x: float) -> float:
    return max(1.0, math.log2(max(2.0, x)))


def bgi_bound(n: int, diameter: int) -> float:
    """Bar-Yehuda–Goldreich–Itai randomized broadcast:
    ``O(D log n + log^2 n)`` [3]."""
    return diameter * _log2(n) + _log2(n) ** 2


def czumaj_rytter_bound(n: int, diameter: int) -> float:
    """Czumaj–Rytter / Kowalski–Pelc randomized broadcast:
    ``O(D log(n/D) + log^2 n)`` [8, 21] — optimal without spontaneous
    transmissions."""
    return diameter * _log2(n / max(1, diameter)) + _log2(n) ** 2


def czumaj_davies_bound(n: int, diameter: int) -> float:
    """Czumaj–Davies broadcast/leader election:
    ``O(D log_D n + polylog n)`` [7] (polylog taken as ``log^4``)."""
    return diameter * max(1.0, _log2(n) / _log2(diameter)) + _log2(n) ** 4


def paper_bound(n: int, diameter: int, alpha: int) -> float:
    """This paper's Theorems 7-8: ``O(D log_D alpha + polylog n)``."""
    log_d_alpha = max(1.0, _log2(alpha) / _log2(diameter))
    return diameter * log_d_alpha + _log2(n) ** 4


def ghaffari_haeupler_le_bound(n: int, diameter: int) -> float:
    """Ghaffari–Haeupler leader election:
    ``O((D log(n/D) + log^3 n) * min(log log n, log(n/D)))`` [16]."""
    base = diameter * _log2(n / max(1, diameter)) + _log2(n) ** 3
    factor = min(
        max(1.0, math.log2(_log2(n))), _log2(n / max(1, diameter))
    )
    return base * factor


def broadcast_lower_bound(n: int, diameter: int) -> float:
    """``Omega(D log(n/D) + log^2 n)`` [1, 22] — without spontaneous
    transmissions (the regime the paper's algorithm escapes)."""
    return diameter * _log2(n / max(1, diameter)) + _log2(n) ** 2


def spontaneous_lower_bound(diameter: int) -> float:
    """The only known lower bound with spontaneous transmissions:
    the trivial ``Omega(D)`` (paper Section 5)."""
    return float(diameter)


def mis_lower_bound(n: int) -> float:
    """Farach-Colton–Fernandes–Mosteiro: ``Omega(log^2 n)`` for
    high-probability MIS [14]."""
    return _log2(n) ** 2


def mis_paper_bound(n: int) -> float:
    """Theorem 14: Radio MIS in ``O(log^3 n)`` steps."""
    return _log2(n) ** 3
