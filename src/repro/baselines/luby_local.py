"""Luby's MIS in the LOCAL message-passing model (comparator substrate).

The paper chooses Ghaffari's algorithm over Luby's classic one because
Luby's rounds need communication that is hard to realize in
``O(log^2 n)`` radio steps (Section 4.1's footnote). To let the E10
experiment examine that trade concretely, this module provides:

* a minimal synchronous LOCAL-model simulator (free message exchange
  with all neighbors each round — the abstraction radio networks cannot
  cheaply implement), and
* Luby's algorithm on it (random-priority variant: each round every
  live node draws a uniform priority and joins the MIS iff it beats all
  live neighbors).

Luby terminates in ``O(log n)`` LOCAL rounds whp; Radio MIS needs
``O(log n)`` rounds too but pays ``O(log^2 n)`` radio steps per round —
the E10 table shows rounds side by side with the radio step cost that
the LOCAL abstraction hides.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable

import networkx as nx
import numpy as np

from ..graphs.independence import is_maximal_independent_set


@dataclasses.dataclass
class LubyResult:
    """Outcome of a Luby MIS run in the LOCAL model."""

    mis: set[Hashable]
    rounds: int
    messages: int
    valid: bool


def luby_mis(
    graph: nx.Graph,
    rng: np.random.Generator,
    max_rounds: int | None = None,
) -> LubyResult:
    """Run Luby's MIS (random-priority variant) in the LOCAL model.

    Parameters
    ----------
    graph:
        Any undirected graph.
    rng:
        Randomness source.
    max_rounds:
        Safety budget; defaults to ``8 * ceil(log2 n) + 8``. Luby always
        terminates, whp much sooner.

    Returns
    -------
    LubyResult
        ``messages`` counts one message per live edge endpoint per round
        — the LOCAL communication volume radio networks cannot afford.
    """
    n = graph.number_of_nodes()
    if max_rounds is None:
        max_rounds = 8 * max(1, int(np.ceil(np.log2(max(2, n))))) + 8

    live = set(graph.nodes)
    mis: set[Hashable] = set()
    messages = 0
    rounds = 0
    while live and rounds < max_rounds:
        rounds += 1
        priority = {v: float(rng.random()) for v in live}
        # Each live node sends its priority to live neighbors (counted).
        joined = set()
        for v in live:
            live_neighbors = [u for u in graph.neighbors(v) if u in live]
            messages += len(live_neighbors)
            if all(priority[v] > priority[u] for u in live_neighbors):
                joined.add(v)
        removed = set(joined)
        for v in joined:
            removed.update(u for u in graph.neighbors(v) if u in live)
        mis |= joined
        live -= removed

    return LubyResult(
        mis=mis,
        rounds=rounds,
        messages=messages,
        valid=not live and is_maximal_independent_set(graph, mis),
    )
