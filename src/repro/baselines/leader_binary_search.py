"""Binary-search leader election baseline (packet level).

The classical reduction (paper Section 1.5.1): leader election completes
in ``O(log n) x broadcasting time`` by binary-searching for the highest
ID. Each phase asks "does any node have an ID in the upper half of the
current range?" — a multi-source broadcast from the nodes in that half;
hearing the flood (or not) lets every node halve the range identically.

Here each phase runs the packet-level multi-source BGI broadcast
(:mod:`repro.baselines.bgi_broadcast`) to completion, so the measured
step count embodies the ``O(log n * (D log n + log^2 n))`` cost this
approach pays, versus the single-Compete cost of the paper's
Algorithm 3.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..engine.policy import ExecutionPolicy, legacy_policy
from ..radio.errors import GraphContractError
from ..radio.network import RadioNetwork
from .bgi_broadcast import bgi_broadcast


@dataclasses.dataclass
class BinarySearchElectionResult:
    """Outcome of binary-search leader election."""

    leader: int
    leader_id: int
    phases: int
    steps: int
    elected: bool


def binary_search_election(
    network: RadioNetwork,
    rng: np.random.Generator,
    id_bits: int | None = None,
    engine: str | None = None,
    *,
    policy: ExecutionPolicy | None = None,
) -> BinarySearchElectionResult:
    """Elect the node with the highest random ID by binary search.

    Parameters
    ----------
    network:
        A connected radio network.
    rng:
        Randomness source; also draws the ``Theta(log n)``-bit node IDs.
    id_bits:
        ID length; defaults to ``3 ceil(log2 n)`` (unique whp).
    policy:
        Execution policy for the per-phase BGI floods —
        ``engine="windowed"`` (the ``"auto"`` default, one sparse
        product per sweep) or ``"reference"`` (step-wise); seeded
        results are bit-identical. ``engine=`` is the deprecated
        per-call form (shimmed).

    Notes
    -----
    The per-phase "is the upper half inhabited?" test floods from the
    inhabited set; an *empty* upper half produces no flood, which every
    node detects by hearing nothing for the phase's full budget. Since
    multi-source BGI has no fixed budget here (it runs to completion),
    the empty case is resolved by the simulation directly — at the cost
    of zero steps, which only *under*-counts this baseline's steps,
    keeping the comparison conservative.
    """
    policy = legacy_policy(policy, "binary_search_election", engine=engine)
    policy.bind(network)
    if not network.is_connected():
        raise GraphContractError("leader election requires connectivity")
    n = network.n
    if id_bits is None:
        id_bits = 3 * max(2, int(np.ceil(np.log2(max(2, n)))))
    ids = rng.integers(0, 2**id_bits, size=n)

    lo, hi = 0, 2**id_bits - 1
    steps_before = network.steps_elapsed
    phases = 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        upper = [int(v) for v in np.nonzero(ids >= mid)[0]]
        phases += 1
        if upper:
            bgi_broadcast(
                network, upper[0], rng, sources=upper, policy=policy
            )
            lo = mid
        else:
            hi = mid - 1

    winners = np.nonzero(ids == lo)[0]
    leader = int(winners[0])
    return BinarySearchElectionResult(
        leader=leader,
        leader_id=int(lo),
        phases=phases,
        steps=network.steps_elapsed - steps_before,
        elected=len(winners) == 1,
    )


def binary_search_election_reference(
    network: RadioNetwork,
    rng: np.random.Generator,
    id_bits: int | None = None,
) -> BinarySearchElectionResult:
    """Step-wise binary-search election (BGI floods on the reference
    delivery path); the equivalence suite pins the windowed run against
    it bit-for-bit."""
    return binary_search_election(
        network, rng, id_bits=id_bits,
        policy=ExecutionPolicy(engine="reference"),
    )
