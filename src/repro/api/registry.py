"""The protocol registry: every runnable protocol, declared once.

A :class:`ProtocolSpec` is the registry's unit: a protocol's name, its
config dataclass, the schedule emitters it owns, its reference twin,
its result type, and the engine variants it implements — plus the hook
that actually executes it and optional CLI metadata from which
:mod:`repro.cli` generates the protocol's subcommand. Specs register
through :func:`register_protocol` at import of
:mod:`repro.api.protocols`, so ``import repro.api`` is all discovery
takes::

    >>> import repro.api as api
    >>> sorted(api.protocol_names())        # doctest: +ELLIPSIS
    ['bgi', 'broadcast', 'decay', 'eed', ...]

The registry is also a *completeness contract*: every schedule emitter
in the tree must be claimed by exactly the spec that owns it (or be one
of the engine-layer adapters in :data:`ADAPTER_EMITTERS`), and
``tests/test_schedule_contract.py`` pins the AST-scanned emitter
inventory against exactly that union — a new emitter that forgets
``@register_protocol`` fails CI.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from ..radio.errors import ProtocolError

#: Schedule emitters that belong to the engine layer itself — generic
#: adapters every protocol may ride (the legacy-protocol lift, the
#: plan/commit-to-generator lift, and the multiplexer's joint-window
#: generator) — rather than to any one registered protocol. The
#: inventory test unions these with the specs' claimed emitters.
ADAPTER_EMITTERS = frozenset(
    {"protocol_schedule", "segment_schedule", "_multiplex"}
)


def _exit_ok(report: Any, fields: dict[str, Any]) -> int:
    """Default CLI exit code: every finished run is a success."""
    return 0


@dataclasses.dataclass(frozen=True)
class CLISpec:
    """How a registered protocol surfaces as a CLI subcommand.

    The CLI builds every protocol subcommand from this record plus the
    shared graph/policy flag groups — no per-subcommand policy parsing
    exists anymore.

    Attributes
    ----------
    help:
        One-line subcommand help.
    add_arguments:
        Optional hook adding protocol-specific flags to the
        subcommand's parser.
    config_from_args:
        Builds the protocol's config object from parsed args (may
        raise :class:`~repro.radio.errors.ProtocolError` for
        contradictory flags; the CLI prints it and exits 2).
    report_fields:
        ``(report, graph, config) -> dict`` — the protocol-specific
        fields of the printed report (merged after the shared
        graph/engine fields).
    exit_code:
        ``(report, fields) -> int`` — process exit code (0 =
        success), given the already-computed ``report_fields`` dict so
        derived facts (MIS validity, informed counts) are computed
        once per run.
    tweak_policy:
        Optional ``(args, policy) -> policy`` hook for flags that are
        policy sugar (e.g. ``icp --fused`` rewriting the engine);
        raises :class:`~repro.radio.errors.ProtocolError` on
        contradictory combinations.
    relabel:
        Convert node labels to integers before running (protocols
        whose configs address nodes by index on label-carrying graph
        families).
    """

    help: str
    config_from_args: Callable[[Any], Any]
    report_fields: Callable[[Any, Any, Any], dict[str, Any]]
    add_arguments: Callable[[Any], None] | None = None
    exit_code: Callable[[Any, dict[str, Any]], int] = _exit_ok
    tweak_policy: Callable[[Any, Any], Any] | None = None
    relabel: bool = False


@dataclasses.dataclass(frozen=True)
class ProtocolSpec:
    """One registered protocol: declaration plus execution hook.

    Attributes
    ----------
    name:
        Registry key (and CLI subcommand name).
    title:
        One-line description.
    config_cls:
        The protocol's config dataclass (``None`` for config-free
        protocols).
    result_cls:
        Type of the protocol result carried by the
        :class:`~repro.api.report.RunReport`.
    engines:
        Engine variants this protocol implements (``"auto"`` resolves
        to ``default_engine``); anything else is refused by name.
    default_engine:
        What ``engine="auto"`` means for this protocol.
    emitters:
        Names of the schedule-emitter generator functions this
        protocol owns — the registry side of the AST-pinned emitter
        inventory (see module docstring).
    reference:
        The retained step-wise twin entry point (``None`` when the
        protocol has no packet-level reference).
    execute:
        ``execute(target, rng, config, policy) -> (result, network)``
        — the actual run. ``target`` is the graph or network
        :func:`~repro.api.run.run` prepared, ``policy`` is already
        resolved; ``network`` is the radio network the run used
        (``None`` for round-accounted protocols, which simulate no
        radio steps). A hook whose config can override the engine
        (the legacy ``packet_compete.engine`` field) returns a third
        element — the *effective* policy — so the
        :class:`~repro.api.report.RunReport` echo names what actually
        ran.
    accepts:
        What ``execute`` expects as target: ``"network"`` (a
        :class:`~repro.radio.network.RadioNetwork` is built from graph
        input), ``"graph"`` (the bare graph), or ``"none"`` (the
        protocol builds its own topology, e.g. the wake-up clique).
    corpus_ok:
        Whether ``execute`` accepts an array-native
        :class:`~repro.corpus.graph.CSRGraph` target (mmap-loaded
        corpus entries, shared-memory attachments). ``"network"``
        protocols ride the CSR adjacency end to end and default to
        ``True``; specs whose hook walks networkx-only surfaces
        (``graph.subgraph``, per-node attribute dicts) declare
        ``False`` and :func:`~repro.api.run.run` refuses by name,
        pointing at ``CSRGraph.to_networkx()``.
    cli:
        CLI metadata, or ``None`` for library-only protocols.
    """

    name: str
    title: str
    config_cls: type | None
    result_cls: type
    engines: tuple[str, ...]
    default_engine: str
    emitters: tuple[str, ...]
    reference: Callable[..., Any] | None
    execute: Callable[..., Any]
    accepts: str = "network"
    corpus_ok: bool = True
    cli: CLISpec | None = None


#: The process-wide registry, keyed by spec name (insertion-ordered).
_REGISTRY: dict[str, ProtocolSpec] = {}


def register_protocol(**spec_kwargs: Any) -> Callable[[Callable], Callable]:
    """Class-of-service decorator declaring a protocol's spec.

    Applied to the protocol's ``execute`` hook::

        @register_protocol(
            name="mis", title="Radio MIS (Algorithm 7)",
            config_cls=MISConfig, result_cls=MISResult,
            engines=("windowed", "reference"), default_engine="windowed",
            emitters=("mis_schedule",), reference=compute_mis_reference,
        )
        def _execute_mis(network, rng, config, policy): ...

    The decorated function is stored as :attr:`ProtocolSpec.execute`
    and returned unchanged. Registering a name twice refuses — specs
    are declarations, not configuration to be monkey-patched.
    """

    def decorate(execute: Callable) -> Callable:
        spec = ProtocolSpec(execute=execute, **spec_kwargs)
        if spec.name in _REGISTRY:
            raise ProtocolError(
                f"protocol {spec.name!r} is already registered"
            )
        if spec.default_engine not in spec.engines:
            raise ProtocolError(
                f"protocol {spec.name!r} defaults to engine "
                f"{spec.default_engine!r}, which is not in its engine "
                f"set {spec.engines}"
            )
        _REGISTRY[spec.name] = spec
        return execute

    return decorate


def get_protocol(name_or_spec: str | ProtocolSpec) -> ProtocolSpec:
    """Look up a registered protocol, refusing unknowns by name."""
    if isinstance(name_or_spec, ProtocolSpec):
        return name_or_spec
    spec = _REGISTRY.get(name_or_spec)
    if spec is None:
        raise ProtocolError(
            f"unknown protocol: {name_or_spec!r} "
            f"(registered: {protocol_names()})"
        )
    return spec


def protocol_names() -> tuple[str, ...]:
    """Registered protocol names, in registration order."""
    return tuple(_REGISTRY)


def list_protocols() -> tuple[ProtocolSpec, ...]:
    """All registered specs, in registration order."""
    return tuple(_REGISTRY.values())


def registered_emitters() -> frozenset[str]:
    """Every emitter name claimed by a registered protocol.

    The inventory test asserts the AST-scanned emitter set equals this
    union plus :data:`ADAPTER_EMITTERS`.
    """
    names: set[str] = set()
    for spec in _REGISTRY.values():
        names.update(spec.emitters)
    return frozenset(names)


__all__ = [
    "ADAPTER_EMITTERS",
    "CLISpec",
    "ProtocolSpec",
    "get_protocol",
    "list_protocols",
    "protocol_names",
    "register_protocol",
    "registered_emitters",
]
