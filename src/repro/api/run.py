"""The front door: one ``run()`` for every registered protocol.

``run(spec_or_name, graph_or_network, ...)`` is the uniform execution
surface the CLI, the experiment harness, and the benchmarks are built
on: look up the protocol in the registry, resolve the
:class:`~repro.engine.policy.ExecutionPolicy` (``"auto"`` engine, the
process-wide memory budget), execute, and wrap the result in a
:class:`~repro.api.report.RunReport` with step/trace/wall/provenance
accounting. Results are bit-identical to the protocol's legacy entry
point on a shared seed — ``run`` adds accounting around the same code
path, never a different one (pinned per protocol by
``tests/test_api.py``).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any

import networkx as nx
import numpy as np

from ..engine.kernels import compiled_kernel_name
from ..engine.policy import ExecutionPolicy
from ..radio.errors import ProtocolError
from ..radio.network import RadioNetwork
from .registry import ProtocolSpec, get_protocol
from .report import RunReport


def _resolve_rng(
    seed: int | None, rng: np.random.Generator | None
) -> tuple[np.random.Generator, int | None]:
    """Exactly one randomness source, please."""
    if (seed is None) == (rng is None):
        raise ProtocolError(
            "run() needs exactly one of seed= (an integer) or rng= "
            "(a numpy Generator)"
        )
    if rng is not None:
        return rng, None
    return np.random.default_rng(seed), int(seed)  # type: ignore[arg-type]


def _graph_facts(
    graph: nx.Graph | None, network: RadioNetwork | None
) -> dict[str, Any] | None:
    """The provenance summary of the input graph.

    When the run held a network, its CSR adjacency gives the edge
    count for free; provenance must never re-walk a large graph (an
    ``nx.number_of_edges`` is an O(n) Python loop — measurable
    front-door overhead at ``n = 10^5``).
    """
    if graph is None:
        return None
    if network is not None:
        edges = int(network._adj.nnz // 2)
    else:
        edges = graph.number_of_edges()
    return {
        "family": graph.graph.get("family"),
        "n": graph.number_of_nodes(),
        "edges": edges,
    }


def _corpus_facts(graph: Any) -> dict[str, Any] | None:
    """The ``provenance["corpus"]`` record: which stored instance ran.

    ``None`` for ordinary networkx targets; for array-native
    :class:`~repro.corpus.graph.CSRGraph` targets it names the content
    digest (when the entry carries one) and how the arrays arrived
    (``"mmap"``, ``"shm"``, or ``"memory"``).
    """
    if graph is None or not hasattr(graph, "csr_arrays"):
        return None
    return {
        "digest": graph.graph.get("digest"),
        "source": getattr(graph, "source", "memory"),
        "n": graph.number_of_nodes(),
    }


def _resolve_corpus_target(
    spec: ProtocolSpec, target: Any, corpus: Any
) -> Any:
    """Fold the ``corpus=`` knob into the run target, refusing misuse.

    ``corpus`` may be a :class:`~repro.corpus.graph.CSRGraph` (used
    as-is) or a corpus entry path (mmap-loaded). Protocols whose hooks
    walk networkx-only surfaces declare ``corpus_ok=False`` and are
    refused by name — ``CSRGraph.to_networkx()`` is the documented
    bridge.
    """
    if corpus is not None:
        if target is not None:
            raise ProtocolError(
                "run() takes target= or corpus=, not both — the corpus "
                "entry IS the graph"
            )
        if hasattr(corpus, "csr_arrays"):
            target = corpus
        else:
            from ..corpus.store import load_graph

            target = load_graph(corpus)
    if (
        target is not None
        and hasattr(target, "csr_arrays")
        and not (spec.accepts == "network" and spec.corpus_ok)
    ):
        raise ProtocolError(
            f"protocol {spec.name!r} does not take array-native corpus "
            f"graphs (accepts={spec.accepts!r}, corpus_ok="
            f"{spec.corpus_ok}); materialize one with "
            f"CSRGraph.to_networkx() instead"
        )
    return target


def _prepare_target(
    spec: ProtocolSpec,
    target: nx.Graph | RadioNetwork | None,
    policy: ExecutionPolicy,
) -> tuple[Any, RadioNetwork | None, nx.Graph | None]:
    """Coerce the caller's graph/network into what the spec accepts.

    Returns ``(execute_target, network, graph)`` — the network is the
    one step/trace accounting reads (``None`` when the protocol builds
    its own or simulates none).
    """
    if spec.accepts == "none":
        if target is not None:
            raise ProtocolError(
                f"protocol {spec.name!r} builds its own topology; "
                f"pass target=None (its config carries the sizes)"
            )
        return None, None, None
    if target is None:
        raise ProtocolError(
            f"protocol {spec.name!r} needs a graph or RadioNetwork target"
        )
    if spec.accepts == "graph":
        graph = target.graph if isinstance(target, RadioNetwork) else target
        return graph, None, graph
    # accepts == "network"
    if isinstance(target, RadioNetwork):
        return target, target, target.graph
    network = RadioNetwork(target, trace=policy.make_trace())
    return network, network, target


def run(
    protocol: str | ProtocolSpec,
    target: nx.Graph | RadioNetwork | None = None,
    *,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    config: Any | None = None,
    policy: ExecutionPolicy | None = None,
    measure_memory: bool = False,
    corpus: Any | None = None,
) -> RunReport:
    """Run a registered protocol and return its :class:`RunReport`.

    Parameters
    ----------
    protocol:
        Registry name (see :func:`~repro.api.registry.protocol_names`)
        or a :class:`~repro.api.registry.ProtocolSpec` directly.
    target:
        The graph to run on — an ``nx.Graph`` (a
        :class:`~repro.radio.network.RadioNetwork` is built with the
        policy's trace grade) or a prebuilt ``RadioNetwork``. For
        network-accepting protocols the prebuilt network is used
        as-is, keeping its trace and step counter (the report
        accounts the delta). Graph-accepting protocols (broadcast,
        leader, partition) take only the topology: pass a network and
        its ``.graph`` is used — packet modes build their own
        internal network (which the report accounts), leaving the
        caller's untouched. Self-topology protocols (``wakeup``) take
        ``None``.
    seed, rng:
        Exactly one: an integer seed (recorded in provenance) or a
        live generator (its stream is consumed exactly as the legacy
        entry point would — bit-identical runs).
    config:
        The protocol's config object (its registered ``config_cls``);
        ``None`` runs the protocol's defaults.
    policy:
        The :class:`~repro.engine.policy.ExecutionPolicy`; ``None``
        means all-auto. The report echoes the *resolved* policy.
    measure_memory:
        Trace the execution with ``tracemalloc`` and record the peak.
        Opt-in: tracing taxes allocations, so timed runs leave it off
        and measure in a second pass (the benchmarks' two-pass
        pattern).
    corpus:
        Run on a corpus graph instead of ``target`` (passing both
        refuses): a :class:`~repro.corpus.graph.CSRGraph` directly, or
        the path of a stored entry — mmap-loaded zero-copy, with the
        entry digest recorded in ``provenance["corpus"]``. Network-
        accepting protocols consume the CSR arrays end to end;
        protocols declared ``corpus_ok=False`` refuse and name
        ``CSRGraph.to_networkx()`` as the bridge.

    Returns
    -------
    RunReport
        With ``result`` bit-identical to the legacy entry point on the
        same seed.
    """
    spec = get_protocol(protocol)
    if config is not None and spec.config_cls is not None:
        if not isinstance(config, spec.config_cls):
            raise ProtocolError(
                f"protocol {spec.name!r} takes config of type "
                f"{spec.config_cls.__name__}, got "
                f"{type(config).__name__}"
            )
    policy = policy or ExecutionPolicy()
    generator, seed_used = _resolve_rng(seed, rng)
    target = _resolve_corpus_target(spec, target, corpus)
    execute_target, network, graph = _prepare_target(spec, target, policy)

    n = graph.number_of_nodes() if graph is not None else None
    resolved = dataclasses.replace(
        policy.resolve(n),
        engine=policy.engine_for(spec.engines, spec.default_engine),
    )

    if network is not None:
        # Per-run accounting: kernel_use, residual_stats, and
        # phase_timing describe THIS run. On a reused network they
        # would otherwise accumulate across runs (over-counting
        # residual rebuilds, mixing timing buckets); steps/trace are
        # different — they are lifetime counters the report deltas.
        network.kernel_use.clear()
        for key in network.residual_stats:
            network.residual_stats[key] = 0
        for key in network.phase_timing:
            network.phase_timing[key] = 0.0

    steps_before = network.steps_elapsed if network is not None else 0
    trace_before = (
        (
            network.trace.total_steps,
            network.trace.total_transmissions,
            network.trace.total_receptions,
        )
        if network is not None
        else (0, 0, 0)
    )

    def execute() -> Any:
        # The resolved policy goes down the same entry-point path a
        # direct caller would take, so runs are bit-identical to the
        # legacy form; only the echo is pre-resolved.
        return spec.execute(execute_target, generator, config, resolved)

    peak: int | None = None
    started = time.perf_counter()
    if measure_memory:
        from ..analysis.experiments import measure_peak

        out, peak = measure_peak(execute)
    else:
        out = execute()
    wall = time.perf_counter() - started
    # Hooks whose config can override policy fields (the legacy
    # packet_compete.engine) return the effective policy third, so
    # the echo names what actually executed.
    result, run_network, *effective = out
    if effective:
        resolved = effective[0]

    network = network if network is not None else run_network
    faults_prov = None
    schedule = resolved.faults
    if schedule is not None and not schedule.is_empty:
        realized = (
            dict(network._fault_state.realized)
            if network is not None and network._fault_state is not None
            else {}
        )
        faults_prov = {
            "digest": schedule.digest(),
            "events": schedule.event_counts(),
            "realized": realized,
        }
    # Delivery provenance: which chunk kernels actually ran, and how
    # much of the run executed on a residual (active-set-restricted)
    # world — so a report names the code that produced it.
    delivery_prov: dict[str, Any] = {
        "mode": resolved.delivery,
        "restrict": resolved.restrict,
        "kernel": compiled_kernel_name(resolved.delivery),
    }
    if network is not None:
        delivery_prov["kernel_use"] = dict(network.kernel_use)
        delivery_prov["residual"] = dict(network.residual_stats)
    if network is not None:
        steps = network.steps_elapsed - steps_before
        trace = {
            "steps": network.trace.total_steps - trace_before[0],
            "transmissions": (
                network.trace.total_transmissions - trace_before[1]
            ),
            "receptions": (
                network.trace.total_receptions - trace_before[2]
            ),
        }
    else:
        steps = int(getattr(result, "steps", 0) or 0)
        trace = {"steps": steps, "transmissions": 0, "receptions": 0}

    import repro

    return RunReport(
        protocol=spec.name,
        result=result,
        steps=steps,
        trace=trace,
        wall_time_s=wall,
        peak_mem_bytes=peak,
        policy=resolved,
        provenance={
            "seed": seed_used,
            "graph": _graph_facts(graph, network),
            "corpus": _corpus_facts(graph),
            "faults": faults_prov,
            "delivery": delivery_prov,
            "residual": (
                dict(network.residual_stats)
                if network is not None
                else None
            ),
            "timing": (
                {
                    k: round(v, 6)
                    for k, v in network.phase_timing.items()
                }
                if network is not None
                else None
            ),
            "version": getattr(repro, "__version__", "unknown"),
        },
    )


__all__ = ["run"]
