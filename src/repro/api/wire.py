"""The RunReport wire format: tagged JSON for every result payload.

:class:`~repro.api.report.RunReport` is the value every consumer of
this package exchanges — the CLI prints it, ``run_trials*`` aggregates
it, and the experiment service (:mod:`repro.service`) persists it and
sends it over HTTP. JSON is the only interchange the service's
stdlib-only constraint allows, but reports carry values JSON does not:
numpy arrays (``MISResult.mis_mask``), sets (``MISResult.mis``),
tuples, and nested frozen dataclasses (the
:class:`~repro.engine.policy.ExecutionPolicy` echo, a
:class:`~repro.faults.FaultSchedule`, per-round history records).

The codec here round-trips all of them through *tagged objects*: any
value JSON cannot express natively encodes as a dict carrying the
reserved :data:`TAG` key naming its kind. Decoding is closed-world —
dataclasses are reconstructed only from modules inside this package
(``repro.*``), so a wire document can never instantiate arbitrary
classes. The contract, pinned by ``tests/test_service.py``, is::

    values_equal(decode_value(json.loads(json.dumps(encode_value(v)))), v)

and for whole reports ``RunReport.from_json(r.to_json()) == r`` — the
report's own outcome equality, which is exactly the service store's
cache-hit check.

ndarrays travel as base64 of their contiguous bytes plus dtype and
shape — exact for every dtype, including float payloads (no decimal
round-trip is involved). Scalars stay native JSON: Python floats
round-trip exactly through ``json`` (shortest-repr), and numpy scalar
types flatten to their Python equivalents (``values_equal`` compares
them equal, which is the pinned contract — the wire format does not
promise to preserve *scalar* numpy types, only values and array
payloads).
"""

from __future__ import annotations

import base64
import dataclasses
import importlib
import json
from typing import Any

import numpy as np

from ..radio.errors import ProtocolError

__all__ = [
    "TAG",
    "decode_value",
    "encode_value",
    "report_from_json",
    "report_to_json",
]

#: Reserved key marking a tagged object. A plain dict that happens to
#: carry this key is itself escaped as a tagged ``"dict"`` object, so
#: the namespace cannot collide.
TAG = "__repro__"


def encode_value(value: Any) -> Any:
    """Encode ``value`` into a JSON-serializable structure.

    Natively JSON-able scalars pass through (numpy scalars flatten to
    Python ones); ndarrays, sets, frozensets, tuples, bytes, and
    dataclass instances become tagged objects; lists and string-keyed
    dicts recurse. Anything else refuses with
    :class:`~repro.radio.errors.ProtocolError` naming the type — a
    silent ``str()`` fallback would decode into a different value.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        data = np.ascontiguousarray(value)
        return {
            TAG: "ndarray",
            "dtype": data.dtype.str,
            "shape": list(data.shape),
            "data": base64.b64encode(data.tobytes()).decode("ascii"),
        }
    if isinstance(value, bytes):
        return {TAG: "bytes", "data": base64.b64encode(value).decode("ascii")}
    if isinstance(value, (set, frozenset)):
        # Deterministic member order (sorted by encoded repr) so equal
        # sets produce byte-identical documents — digests built over
        # wire documents rely on it.
        items = [encode_value(v) for v in value]
        items.sort(key=repr)
        return {
            TAG: "set" if isinstance(value, set) else "frozenset",
            "items": items,
        }
    if isinstance(value, tuple):
        return {TAG: "tuple", "items": [encode_value(v) for v in value]}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        if not cls.__module__.startswith("repro."):
            raise ProtocolError(
                f"cannot encode dataclass {cls.__module__}.{cls.__qualname__}"
                f" for the wire: only repro.* dataclasses round-trip"
            )
        return {
            TAG: "dataclass",
            "class": f"{cls.__module__}:{cls.__qualname__}",
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value) and TAG not in value:
            return {k: encode_value(v) for k, v in value.items()}
        # Non-string keys (or a colliding TAG key): escape as pairs.
        return {
            TAG: "dict",
            "items": [
                [encode_value(k), encode_value(v)] for k, v in value.items()
            ],
        }
    raise ProtocolError(
        f"cannot encode {type(value).__name__!r} value for the wire "
        f"(supported: JSON scalars, numpy scalars/arrays, bytes, "
        f"set/frozenset/tuple/list/dict, repro.* dataclasses)"
    )


def _resolve_dataclass(spec: str) -> type:
    """Resolve a ``module:qualname`` tag to a repro dataclass, or refuse.

    Closed-world by construction: only modules under the ``repro``
    package import, and only dataclass types resolve — wire documents
    cannot name arbitrary constructors.
    """
    module_name, _, qualname = spec.partition(":")
    if not (
        module_name == "repro" or module_name.startswith("repro.")
    ) or not qualname:
        raise ProtocolError(
            f"refusing to decode dataclass {spec!r}: only repro.* "
            f"classes round-trip on the wire"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ProtocolError(
            f"cannot decode dataclass {spec!r}: {exc}"
        ) from None
    obj: Any = module
    for part in qualname.split("."):
        obj = getattr(obj, part, None)
        if obj is None:
            raise ProtocolError(
                f"cannot decode dataclass {spec!r}: "
                f"{qualname!r} not found in {module_name}"
            )
    if not (isinstance(obj, type) and dataclasses.is_dataclass(obj)):
        raise ProtocolError(
            f"refusing to decode {spec!r}: not a dataclass type"
        )
    return obj


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (see module doc for the contract)."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if not isinstance(value, dict):
        return value
    kind = value.get(TAG)
    if kind is None:
        return {k: decode_value(v) for k, v in value.items()}
    if kind == "ndarray":
        raw = base64.b64decode(value["data"])
        arr = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
        return arr.reshape(value["shape"]).copy()
    if kind == "bytes":
        return base64.b64decode(value["data"])
    if kind == "set":
        return {decode_value(v) for v in value["items"]}
    if kind == "frozenset":
        return frozenset(decode_value(v) for v in value["items"])
    if kind == "tuple":
        return tuple(decode_value(v) for v in value["items"])
    if kind == "dict":
        return {
            decode_value(k): decode_value(v) for k, v in value["items"]
        }
    if kind == "dataclass":
        cls = _resolve_dataclass(value["class"])
        fields = {
            name: decode_value(v) for name, v in value["fields"].items()
        }
        declared = {f.name: f for f in dataclasses.fields(cls)}
        unknown = sorted(set(fields) - set(declared))
        if unknown:
            raise ProtocolError(
                f"wire document names unknown field(s) {unknown} of "
                f"{cls.__qualname__}"
            )
        init_names = {name for name, f in declared.items() if f.init}
        extra = {k: v for k, v in fields.items() if k not in init_names}
        obj = cls(**{k: v for k, v in fields.items() if k in init_names})
        for name, v in extra.items():
            # Fields declared init=False (caches, memoization slots)
            # are restored directly; frozen dataclasses need the
            # object-protocol write.
            object.__setattr__(obj, name, v)
        return obj
    raise ProtocolError(f"unknown wire tag {kind!r}")


def report_to_json(report: Any, indent: int | None = None) -> str:
    """Serialize a :class:`~repro.api.report.RunReport` to a JSON text."""
    return json.dumps(encode_value(report), indent=indent)


def report_from_json(text: str | bytes) -> Any:
    """Parse a JSON text back into a :class:`~repro.api.report.RunReport`.

    Refuses documents that decode to anything else — the wire format
    is for reports, not arbitrary object graphs.
    """
    from .report import RunReport

    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            f"report document is not valid JSON: {exc}"
        ) from None
    decoded = decode_value(document)
    if not isinstance(decoded, RunReport):
        raise ProtocolError(
            f"wire document decoded to {type(decoded).__name__!r}, "
            f"expected RunReport"
        )
    return decoded
