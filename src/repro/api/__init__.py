"""repro.api — the single front door to every protocol in this package.

Three pieces, one surface:

* :class:`ExecutionPolicy` — every engine knob (engine variant, window
  delivery strategy, streaming slab/budget, contract validation, trace
  grade) as one frozen value, resolved against the process-wide
  defaults. Performance and diagnostics knobs only — seeded results
  are bit-identical under every policy — except the one semantics
  knob: ``faults``, a :class:`FaultSchedule` of crash/sleep/join/jam
  events and per-node capabilities injected into every delivery.
* the **protocol registry** — every runnable protocol declared as a
  :class:`ProtocolSpec` (name, config dataclass, schedule emitters,
  reference twin, result type, engine set) and discoverable through
  :func:`protocol_names` / :func:`list_protocols`. The CLI's
  subcommands are generated from it; the contract suite pins the
  emitter inventory against it.
* :func:`run` — execute any registered protocol on a graph (or
  prebuilt network) and get a :class:`RunReport`: the protocol result
  (bit-identical to the legacy entry point on a shared seed) plus
  steps, trace totals, wall time, optional memory peak, the resolved
  policy echo, and provenance.

Quickstart::

    import numpy as np
    import repro.api as api
    from repro import graphs

    g = graphs.random_udg(n=300, side=8.0, rng=np.random.default_rng(7))
    report = api.run("mis", g, seed=7)
    print(report.result.size, "MIS nodes in", report.steps, "radio steps")

    # Same protocol, streamed under a 64 MiB peak-memory policy:
    policy = api.ExecutionPolicy(mem_budget=api.parse_mem_budget("64M"))
    report = api.run("mis", g, seed=7, policy=policy)   # identical result

Legacy per-call kwargs (``engine=``, ``delivery=``, ``chunk_steps=``,
``mem_budget=`` on the :mod:`repro.core` entry points) keep working
through deprecation shims that construct a policy and delegate — same
code path, bit-identical, one ``DeprecationWarning`` per entry point.
"""

from ..core.mis_restart import RestartableMISConfig
from ..engine.policy import (
    ENGINE_MODES,
    ExecutionPolicy,
    TRACE_MODES,
    available_delivery_modes,
    parse_mem_budget,
)
from ..faults import FaultSchedule, Jam
from . import protocols as _protocols  # noqa: F401  (registers the specs)
from .protocols import (
    BGIConfig,
    BroadcastConfig,
    DecayConfig,
    EEDConfig,
    ICPConfig,
    LeaderConfig,
    PartitionConfig,
    UptimeLeaderConfig,
    WakeupConfig,
)
from .registry import (
    CLISpec,
    ProtocolSpec,
    get_protocol,
    list_protocols,
    protocol_names,
    register_protocol,
)
from .report import RunReport
from .run import run

__all__ = [
    "BGIConfig",
    "BroadcastConfig",
    "CLISpec",
    "DecayConfig",
    "EEDConfig",
    "ENGINE_MODES",
    "ExecutionPolicy",
    "FaultSchedule",
    "ICPConfig",
    "Jam",
    "LeaderConfig",
    "PartitionConfig",
    "ProtocolSpec",
    "RestartableMISConfig",
    "RunReport",
    "TRACE_MODES",
    "UptimeLeaderConfig",
    "WakeupConfig",
    "available_delivery_modes",
    "get_protocol",
    "list_protocols",
    "parse_mem_budget",
    "protocol_names",
    "register_protocol",
    "run",
]
