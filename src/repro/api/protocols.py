"""Registered protocol specs: every runnable protocol, declared here.

Importing this module (which ``import repro.api`` does) populates the
registry with one :class:`~repro.api.registry.ProtocolSpec` per
protocol — packet-level algorithms (``mis``, ``decay``, ``eed``,
``icp``, ``bgi``, ``wakeup``), the round-accounted pipelines
(``broadcast``, ``leader``, both with packet variants behind a config
flag), and the clustering draw (``partition``). Each spec names the
schedule emitters it owns (the inventory contract pinned by
``tests/test_schedule_contract.py``), its reference twin, its engine
set, and the CLI metadata its subcommand is generated from.

Execute hooks delegate to the protocols' own entry points with the
policy threaded through — :func:`repro.api.run` is accounting around
the very same code path a direct caller takes, which is what makes
front-door runs bit-identical to legacy calls on a shared seed.

Config dataclasses defined here (``DecayConfig`` and friends) exist
for protocols whose legacy entry points took loose arguments; they are
thin, explicit records — not behavior.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from ..baselines.bgi_broadcast import (
    BGIBroadcastResult,
    bgi_broadcast,
    bgi_broadcast_reference,
)
from ..core.broadcast import BroadcastResult, broadcast
from ..core.cluster import Clustering
from ..core.compete import CompeteConfig
from ..core.compete_packet import (
    PacketCompeteConfig,
    PacketCompeteResult,
    broadcast_packet,
)
from ..core.decay import DecayResult, run_decay, run_decay_reference
from ..core.effective_degree import (
    EffectiveDegreeResult,
    estimate_effective_degree,
    estimate_effective_degree_reference,
)
from ..core.intra_cluster import (
    ICPResult,
    build_icp_inputs,
    intra_cluster_propagation,
)
from ..core.leader_election import (
    LeaderElectionResult,
    PacketLeaderResult,
    elect_leader,
    elect_leader_packet,
)
from ..baselines.leader_uptime import (
    UptimeElectionResult,
    uptime_threshold_election,
    uptime_threshold_election_reference,
)
from ..core.mis import MISConfig, MISResult, compute_mis, compute_mis_reference
from ..core.mis_restart import (
    RestartableMISConfig,
    RestartableMISResult,
    compute_restartable_mis,
    restartable_mis_reference,
)
from ..core.mpx import partition, partition_reference
from ..core.wakeup import (
    WakeupResult,
    mis_as_wakeup_strategy,
    mis_as_wakeup_strategy_reference,
)
from ..graphs.independence import (
    greedy_independent_set,
    is_maximal_independent_set,
)
from ..graphs.properties import diameter
from ..radio.errors import ProtocolError
from ..radio.network import RadioNetwork
from .registry import CLISpec, register_protocol

# ---------------------------------------------------------------------------
# Config records for protocols whose entry points took loose arguments.
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DecayConfig:
    """One Decay block: who participates, for how many iterations.

    ``active`` of ``None`` means every node participates (the sensible
    front-door default; pass an explicit boolean mask to reproduce a
    protocol-internal block).
    """

    active: np.ndarray | None = None
    messages: list[Any] | None = None
    iterations: int = 1
    n_estimate: int | None = None


@dataclasses.dataclass(frozen=True)
class EEDConfig:
    """One EstimateEffectiveDegree block (Algorithm 6).

    ``p`` is the desire-level vector, or a scalar broadcast to every
    node (default 0.5 — the fresh-MIS level); ``active`` of ``None``
    means all nodes.
    """

    p: float | np.ndarray = 0.5
    active: np.ndarray | None = None
    C: int = 24
    n_estimate: int | None = None


@dataclasses.dataclass(frozen=True)
class ICPConfig:
    """One standalone Intra-Cluster Propagation phase (Algorithms 9-10).

    The standard setup pipeline of
    :func:`~repro.core.intra_cluster.build_icp_inputs` runs first —
    greedy-MIS centers, one ``Partition(beta, MIS)`` draw, its slot
    schedule, knowledge seeded from ``sources`` (node -> message key).
    """

    beta: float = 0.25
    ell: int = 4
    sources: dict[int, int] = dataclasses.field(
        default_factory=lambda: {0: 1}
    )
    with_background: bool = True


@dataclasses.dataclass(frozen=True)
class BroadcastConfig:
    """Broadcast via Compete (Theorem 7), either fidelity level.

    ``packet=False`` (default) runs the round-accounted pipeline;
    ``packet=True`` simulates every radio step through packet Compete.
    ``baseline`` switches the round-accounted pipeline to the [7]
    all-nodes-centers baseline (packet mode has no such knob and
    refuses the combination).
    """

    source: int = 0
    packet: bool = False
    baseline: bool = False
    compete: CompeteConfig | None = None
    packet_compete: PacketCompeteConfig | None = None
    alpha: int | None = None


@dataclasses.dataclass(frozen=True)
class LeaderConfig:
    """Leader election (Algorithm 3), either fidelity level."""

    packet: bool = False
    c_cand: float = 1.0
    compete: CompeteConfig | None = None
    packet_compete: PacketCompeteConfig | None = None
    alpha: int | None = None


@dataclasses.dataclass(frozen=True)
class PartitionConfig:
    """One ``Partition(beta, MIS)`` clustering draw over greedy centers."""

    beta: float = 0.25


@dataclasses.dataclass(frozen=True)
class BGIConfig:
    """The Bar-Yehuda–Goldreich–Itai Decay-broadcast baseline."""

    source: int = 0
    sources: list[int] | None = None
    max_sweeps: int | None = None


@dataclasses.dataclass(frozen=True)
class UptimeLeaderConfig:
    """Uptime-threshold leader election (robustness variant).

    ``threshold`` is the minimum uptime fraction a node needs to stand
    as a candidate; ``horizon`` is the step horizon the fraction is
    measured over (defaults to the fault schedule's declared horizon,
    else ``64 ceil(log2 n)``).
    """

    threshold: float = 0.5
    horizon: int | None = None
    id_bits: int | None = None
    flood_sweeps: int | None = None


@dataclasses.dataclass(frozen=True)
class WakeupConfig:
    """The MIS-as-wake-up reduction: ``k`` active nodes in a clique,
    with the algorithm believing the network has ``n`` nodes."""

    n: int = 1024
    k: int = 32


# ---------------------------------------------------------------------------
# Shared CLI helpers.
# ---------------------------------------------------------------------------


def _fused_flag(args: Any, policy: Any) -> Any:
    """``icp --fused``: policy sugar for ``--engine fused``."""
    if not getattr(args, "fused", False):
        return policy
    if policy.engine not in ("auto", "fused"):
        raise ProtocolError(
            f"--fused contradicts --engine {policy.engine}"
        )
    return dataclasses.replace(policy, engine="fused")


def _stage_policy(config: Any, policy: Any) -> PacketCompeteConfig:
    """Thread the run policy into a packet-Compete config.

    A caller-supplied ``packet_compete`` keeps its own knobs (its
    ``policy`` must then be unset — two sources of truth refuse), and
    its legacy ``engine`` field still works: it moves onto the policy,
    refusing only a genuine conflict (an explicit, different engine on
    the run policy). The default config carries the run's policy into
    every stage.
    """
    pc = config.packet_compete
    if pc is None:
        return PacketCompeteConfig(policy=policy)
    if pc.policy is not None:
        raise ProtocolError(
            "packet_compete.policy and the run policy are both set; "
            "put the policy in one place"
        )
    if pc.engine != "windowed":
        # "auto"/"windowed" on the run policy defer to the config's
        # specific engine (the spec default resolves to "windowed", so
        # a defaulted policy must not veto the config's choice); the
        # effective policy travels back into the RunReport echo.
        if policy.engine not in ("auto", "windowed", pc.engine):
            raise ProtocolError(
                f"packet_compete.engine={pc.engine!r} conflicts with "
                f"the run policy's engine={policy.engine!r}"
            )
        policy = dataclasses.replace(policy, engine=pc.engine)
    return dataclasses.replace(pc, engine="windowed", policy=policy)


def _refuse_inert_faults(name: str, policy: Any, fix: str) -> None:
    """Refuse a non-empty fault schedule a path cannot realize.

    Faults are a semantics knob: silently running fault-free where the
    caller asked for crashes/jamming would misreport robustness, so
    paths that simulate no (or their own) radio steps refuse by name.
    An *empty* schedule passes — it is bit-identical to none.
    """
    schedule = policy.fault_schedule()
    if schedule is not None and not schedule.is_empty:
        raise ProtocolError(
            f"{name} cannot realize a FaultSchedule "
            f"(digest {schedule.digest()}): {fix}"
        )


def _refuse_inert_accounted_knobs(name: str, policy: Any) -> None:
    """Round-accounted pipelines refuse knobs they cannot honor.

    The non-packet paths charge rounds analytically — no radio steps
    execute, so an explicit engine variant, ``validate=True``, or a
    non-empty fault schedule would be silently inert; refusing names
    the fix (``packet=True``).
    """
    if policy.engine not in ("auto", "windowed") or policy.validate:
        raise ProtocolError(
            f"round-accounted {name} simulates no radio steps, so "
            f"engine={policy.engine!r}/validate={policy.validate} "
            f"cannot take effect; run the packet-level pipeline "
            f"instead (packet=True in the config, --packet on the CLI)"
        )
    _refuse_inert_faults(
        f"round-accounted {name}",
        policy,
        "no radio steps are simulated, so crashes/jamming cannot be "
        "injected; run the packet-level pipeline instead (packet=True "
        "in the config, --packet on the CLI)",
    )


# ---------------------------------------------------------------------------
# Packet-level protocols.
# ---------------------------------------------------------------------------


@register_protocol(
    name="mis",
    title="Radio MIS (Algorithm 7, Theorem 14)",
    config_cls=MISConfig,
    result_cls=MISResult,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=("mis_schedule",),
    reference=compute_mis_reference,
    accepts="network",
    cli=CLISpec(
        help="run Radio MIS (Algorithm 7)",
        add_arguments=lambda p: (
            p.add_argument(
                "--oracle-degree",
                action="store_true",
                help="skip EstimateEffectiveDegree (documented speed knob)",
            ),
            p.add_argument(
                "--eed-c", type=int, default=8, help="Algorithm 6's C"
            ),
        ),
        config_from_args=lambda a: MISConfig(
            oracle_degree=a.oracle_degree, eed_C=a.eed_c
        ),
        report_fields=lambda report, graph, config: {
            "mis_size": report.result.size,
            "rounds": report.result.rounds_used,
            "radio_steps": report.result.steps_used,
            "valid": is_maximal_independent_set(graph, report.result.mis),
        },
        exit_code=lambda report, fields: 0 if fields["valid"] else 1,
    ),
)
def _execute_mis(network, rng, config, policy):
    """Registry hook for Radio MIS."""
    return compute_mis(network, rng, config, policy=policy), network


@register_protocol(
    name="mis_restart",
    title="Restartable Radio MIS (robustness variant, epoch restarts)",
    config_cls=RestartableMISConfig,
    result_cls=RestartableMISResult,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=("restartable_mis_schedule",),
    reference=restartable_mis_reference,
    accepts="network",
    cli=CLISpec(
        help="restartable Radio MIS (re-admits woken nodes per epoch)",
        add_arguments=lambda p: (
            p.add_argument(
                "--epochs",
                type=int,
                default=3,
                help="restart epochs (each re-admits awake undecided nodes)",
            ),
            p.add_argument(
                "--eed-c", type=int, default=8, help="Algorithm 6's C"
            ),
        ),
        config_from_args=lambda a: RestartableMISConfig(
            epochs=a.epochs, eed_C=a.eed_c
        ),
        report_fields=lambda report, graph, config: {
            "mis_size": report.result.size,
            "epochs": report.result.epochs_used,
            "rounds": report.result.rounds_used,
            "readmitted": report.result.readmitted,
            "radio_steps": report.result.steps_used,
            "conflict_edges": report.result.conflict_edges,
            "dominated_fraction": round(
                report.result.dominated_fraction, 4
            ),
        },
        exit_code=lambda report, fields: 0
        if fields["conflict_edges"] == 0
        else 1,
    ),
)
def _execute_mis_restart(network, rng, config, policy):
    """Registry hook for restartable Radio MIS."""
    result = compute_restartable_mis(network, rng, config, policy=policy)
    return result, network


@register_protocol(
    name="decay",
    title="One Decay block (Algorithm 5 / Claim 10)",
    config_cls=DecayConfig,
    result_cls=DecayResult,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=("decay_block_schedule",),
    reference=run_decay_reference,
    accepts="network",
    cli=CLISpec(
        help="one Decay block over an active set",
        add_arguments=lambda p: (
            p.add_argument(
                "--iterations",
                type=int,
                default=4,
                help="Decay sweeps in the block",
            ),
        ),
        config_from_args=lambda a: DecayConfig(iterations=a.iterations),
        report_fields=lambda report, graph, config: {
            "radio_steps": report.steps,
            "heard_fraction": round(
                float(report.result.heard.mean()), 4
            ),
        },
    ),
)
def _execute_decay(network, rng, config, policy):
    """Registry hook for one Decay block."""
    config = config or DecayConfig()
    active = (
        np.ones(network.n, dtype=bool)
        if config.active is None
        else np.asarray(config.active, dtype=bool)
    )
    result = run_decay(
        network,
        active,
        rng,
        messages=config.messages,
        iterations=config.iterations,
        n_estimate=config.n_estimate,
        policy=policy,
    )
    return result, network


@register_protocol(
    name="eed",
    title="EstimateEffectiveDegree (Algorithm 6, Lemma 11)",
    config_cls=EEDConfig,
    result_cls=EffectiveDegreeResult,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=("effective_degree_schedule",),
    reference=estimate_effective_degree_reference,
    accepts="network",
    cli=CLISpec(
        help="one EstimateEffectiveDegree block",
        add_arguments=lambda p: (
            p.add_argument(
                "--desire",
                type=float,
                default=0.5,
                help="uniform desire level p",
            ),
            p.add_argument(
                "--eed-c", type=int, default=8, help="Algorithm 6's C"
            ),
        ),
        config_from_args=lambda a: EEDConfig(p=a.desire, C=a.eed_c),
        report_fields=lambda report, graph, config: {
            "radio_steps": report.steps,
            "high_count": int(report.result.high.sum()),
            "steps_per_level": report.result.steps_per_level,
        },
    ),
)
def _execute_eed(network, rng, config, policy):
    """Registry hook for one EstimateEffectiveDegree block."""
    config = config or EEDConfig()
    p = np.asarray(config.p, dtype=np.float64)
    if p.ndim == 0:
        p = np.full(network.n, float(p))
    active = (
        np.ones(network.n, dtype=bool)
        if config.active is None
        else np.asarray(config.active, dtype=bool)
    )
    result = estimate_effective_degree(
        network,
        p,
        active,
        rng,
        C=config.C,
        n_estimate=config.n_estimate,
        policy=policy,
    )
    return result, network


@register_protocol(
    name="icp",
    title="Intra-Cluster Propagation phase (Algorithms 9-10)",
    config_cls=ICPConfig,
    result_cls=ICPResult,
    engines=("windowed", "reference", "fused"),
    default_engine="windowed",
    emitters=("decay_background_schedule",),
    reference=None,
    accepts="network",
    cli=CLISpec(
        help="one Intra-Cluster Propagation phase (Algorithms 9-10)",
        add_arguments=lambda p: (
            p.add_argument(
                "--source", type=int, default=0, help="informed node"
            ),
            p.add_argument(
                "--beta", type=float, default=0.25, help="shift rate"
            ),
            p.add_argument(
                "--ell", type=int, default=4, help="propagation distance"
            ),
            p.add_argument(
                "--fused",
                action="store_true",
                help="shorthand for --engine fused",
            ),
            p.add_argument(
                "--no-background",
                action="store_true",
                help="drop the Algorithm 10 Decay background process",
            ),
        ),
        config_from_args=lambda a: ICPConfig(
            beta=a.beta,
            ell=a.ell,
            sources={a.source: 1},
            with_background=not a.no_background,
        ),
        report_fields=lambda report, graph, config: {
            "ell": (config or ICPConfig()).ell,
            "radio_steps": report.result.steps,
            "informed": int((report.result.knowledge >= 0).sum()),
        },
        exit_code=lambda report, fields: 0
        if fields["informed"] > 1 or fields.get("n") == 1
        else 1,
        tweak_policy=_fused_flag,
        relabel=True,
    ),
)
def _execute_icp(network, rng, config, policy):
    """Registry hook for one standalone ICP phase.

    Runs the standard setup pipeline (greedy-MIS centers, one
    partition draw, the slot schedule) on the same rng, exactly as the
    CLI and the P3 benchmark always did — so front-door runs are
    bit-identical to that legacy sequence.
    """
    config = config or ICPConfig()
    for node in config.sources:
        if not 0 <= int(node) < network.n:
            raise ProtocolError(
                f"icp source {node} out of range [0, {network.n})"
            )
    clustering, schedule, knowledge = build_icp_inputs(
        network.graph, rng, beta=config.beta, sources=config.sources
    )
    result = intra_cluster_propagation(
        network,
        clustering,
        schedule,
        knowledge,
        config.ell,
        rng,
        with_background=config.with_background,
        policy=policy,
    )
    return result, network


@register_protocol(
    name="bgi",
    title="BGI Decay broadcast baseline (packet level)",
    config_cls=BGIConfig,
    result_cls=BGIBroadcastResult,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=("bgi_schedule",),
    reference=bgi_broadcast_reference,
    accepts="network",
    cli=CLISpec(
        help="BGI Decay-broadcast baseline, every step simulated",
        add_arguments=lambda p: (
            p.add_argument(
                "--source", type=int, default=0, help="source node"
            ),
        ),
        config_from_args=lambda a: BGIConfig(source=a.source),
        report_fields=lambda report, graph, config: {
            "delivered": report.result.delivered,
            "radio_steps": report.result.steps,
            "sweeps": report.result.sweeps,
        },
        exit_code=lambda report, fields: 0
        if report.result.delivered
        else 1,
        relabel=True,
    ),
)
def _execute_bgi(network, rng, config, policy):
    """Registry hook for the BGI broadcast baseline."""
    config = config or BGIConfig()
    for node in config.sources if config.sources is not None else [
        config.source
    ]:
        if not 0 <= int(node) < network.n:
            raise ProtocolError(
                f"bgi source {node} out of range [0, {network.n})"
            )
    result = bgi_broadcast(
        network,
        config.source,
        rng,
        sources=config.sources,
        max_sweeps=config.max_sweeps,
        policy=policy,
    )
    return result, network


@register_protocol(
    name="wakeup",
    title="MIS-as-wake-up reduction (Section 1.5.1)",
    config_cls=WakeupConfig,
    result_cls=WakeupResult,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=("_wakeup_mis_schedule",),
    reference=mis_as_wakeup_strategy_reference,
    accepts="none",
    corpus_ok=False,
    cli=CLISpec(
        help="MIS-as-wake-up reduction on a k-clique",
        add_arguments=lambda p: (
            p.add_argument(
                "--believed-n",
                type=int,
                default=1024,
                help="network size the algorithm is told",
            ),
            p.add_argument(
                "--k", type=int, default=32, help="active clique size"
            ),
        ),
        config_from_args=lambda a: WakeupConfig(n=a.believed_n, k=a.k),
        report_fields=lambda report, graph, config: {
            "succeeded": report.result.succeeded,
            "radio_steps": report.result.steps,
            "k": report.result.k,
        },
        exit_code=lambda report, fields: 0
        if report.result.succeeded
        else 1,
    ),
)
def _execute_wakeup(target, rng, config, policy):
    """Registry hook for the wake-up reduction (builds its own clique)."""
    config = config or WakeupConfig()
    result = mis_as_wakeup_strategy(config.n, config.k, rng, policy=policy)
    return result, None


# ---------------------------------------------------------------------------
# Pipelines (round-accounted, with packet variants behind a flag).
# ---------------------------------------------------------------------------


@register_protocol(
    name="broadcast",
    title="Broadcast via Compete (Theorem 7)",
    config_cls=BroadcastConfig,
    result_cls=BroadcastResult,
    engines=("windowed", "reference", "fused"),
    default_engine="windowed",
    emitters=(),
    reference=None,
    accepts="graph",
    corpus_ok=False,
    cli=CLISpec(
        help="broadcast via Compete (Thm 7)",
        add_arguments=lambda p: (
            p.add_argument(
                "--source", type=int, default=0, help="source node"
            ),
            p.add_argument(
                "--baseline",
                action="store_true",
                help="use the [7] all-nodes-centers baseline instead",
            ),
            p.add_argument(
                "--packet",
                action="store_true",
                help="simulate every radio step on the windowed engine",
            ),
        ),
        config_from_args=lambda a: BroadcastConfig(
            source=a.source, packet=a.packet, baseline=a.baseline
        ),
        report_fields=lambda report, graph, config: (
            {
                "D": diameter(graph),
                "mode": "packet (windowed engine)",
                "delivered": report.result.delivered,
                "radio_steps": report.result.steps,
                "phases": report.result.phases,
                "stage_steps": report.result.stage_steps,
            }
            if isinstance(report.result, PacketCompeteResult)
            else {
                "D": diameter(graph),
                "mode": "all"
                if (config or BroadcastConfig()).baseline
                else "mis",
                "delivered": report.result.delivered,
                "total_rounds": report.result.total_rounds,
                "setup_rounds": report.result.setup_rounds,
                "propagation_rounds": report.result.propagation_rounds,
            }
        ),
        exit_code=lambda report, fields: 0
        if report.result.delivered
        else 1,
    ),
)
def _execute_broadcast(graph, rng, config, policy):
    """Registry hook for broadcast (both fidelity levels)."""
    config = config or BroadcastConfig()
    if config.packet:
        if config.baseline:
            raise ProtocolError(
                "--baseline applies to the round-accounted pipeline "
                "only; the packet level has no [7] baseline mode"
            )
        pc = _stage_policy(config, policy)
        network = RadioNetwork(graph, trace=policy.make_trace())
        policy.bind(network)
        result = broadcast_packet(network, config.source, rng, config=pc)
        return result, network, pc.policy
    _refuse_inert_accounted_knobs("broadcast", policy)
    compete_config = config.compete or CompeteConfig(
        centers_mode="all" if config.baseline else "mis"
    )
    result = broadcast(
        graph, config.source, rng, config=compete_config, alpha=config.alpha
    )
    return result, None


@register_protocol(
    name="leader",
    title="Leader election (Algorithm 3, Theorem 8)",
    config_cls=LeaderConfig,
    result_cls=LeaderElectionResult,
    engines=("windowed", "reference", "fused"),
    default_engine="windowed",
    emitters=(),
    reference=None,
    accepts="graph",
    corpus_ok=False,
    cli=CLISpec(
        help="leader election (Algorithm 3)",
        add_arguments=lambda p: (
            p.add_argument(
                "--packet",
                action="store_true",
                help="simulate every radio step on the windowed engine",
            ),
        ),
        config_from_args=lambda a: LeaderConfig(packet=a.packet),
        report_fields=lambda report, graph, config: (
            {
                "mode": "packet (windowed engine)",
                "elected": report.result.elected,
                "leader": report.result.leader,
                "candidates": len(report.result.candidates),
                "radio_steps": report.result.steps,
            }
            if isinstance(report.result, PacketLeaderResult)
            else {
                "elected": report.result.elected,
                "leader": report.result.leader,
                "candidates": len(report.result.candidates),
                "total_rounds": report.result.total_rounds,
            }
        ),
        exit_code=lambda report, fields: 0
        if report.result.elected
        else 1,
    ),
)
def _execute_leader(graph, rng, config, policy):
    """Registry hook for leader election (both fidelity levels)."""
    config = config or LeaderConfig()
    if config.packet:
        pc = _stage_policy(config, policy)
        network = RadioNetwork(graph, trace=policy.make_trace())
        policy.bind(network)
        result = elect_leader_packet(
            network,
            rng,
            config=pc,
            alpha=config.alpha,
            c_cand=config.c_cand,
        )
        return result, network, pc.policy
    _refuse_inert_accounted_knobs("leader election", policy)
    result = elect_leader(
        graph,
        rng,
        config=config.compete,
        alpha=config.alpha,
        c_cand=config.c_cand,
    )
    return result, None


@register_protocol(
    name="leader_uptime",
    title="Uptime-threshold leader election (robustness variant)",
    config_cls=UptimeLeaderConfig,
    result_cls=UptimeElectionResult,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=(),
    reference=uptime_threshold_election_reference,
    accepts="network",
    cli=CLISpec(
        help="elect the highest-ID node whose uptime clears a threshold",
        add_arguments=lambda p: (
            p.add_argument(
                "--threshold",
                type=float,
                default=0.5,
                help="minimum uptime fraction to stand as candidate",
            ),
            p.add_argument(
                "--horizon",
                type=int,
                default=None,
                help="step horizon uptime is measured over",
            ),
        ),
        config_from_args=lambda a: UptimeLeaderConfig(
            threshold=a.threshold, horizon=a.horizon
        ),
        report_fields=lambda report, graph, config: {
            "elected": report.result.elected,
            "leader": report.result.leader,
            "candidates": report.result.candidates,
            "phases": report.result.phases,
            "radio_steps": report.result.steps,
        },
        exit_code=lambda report, fields: 0
        if report.result.elected
        else 1,
        relabel=True,
    ),
)
def _execute_leader_uptime(network, rng, config, policy):
    """Registry hook for uptime-threshold leader election."""
    config = config or UptimeLeaderConfig()
    result = uptime_threshold_election(
        network,
        rng,
        threshold=config.threshold,
        horizon=config.horizon,
        id_bits=config.id_bits,
        flood_sweeps=config.flood_sweeps,
        policy=policy,
    )
    return result, network


# ---------------------------------------------------------------------------
# Clustering.
# ---------------------------------------------------------------------------


@register_protocol(
    name="partition",
    title="Partition(beta, MIS) clustering draw (Theorem 2)",
    config_cls=PartitionConfig,
    result_cls=Clustering,
    engines=("windowed", "reference"),
    default_engine="windowed",
    emitters=(),
    reference=partition_reference,
    accepts="graph",
    corpus_ok=False,
    cli=CLISpec(
        help="one Partition(beta, MIS) clustering draw",
        add_arguments=lambda p: (
            p.add_argument(
                "--beta", type=float, default=0.25, help="shift rate"
            ),
        ),
        config_from_args=lambda a: PartitionConfig(beta=a.beta),
        report_fields=lambda report, graph, config: {
            "beta": (config or PartitionConfig()).beta,
            "centers": len(report.result.centers),
            "clusters_used": len(report.result.used_centers()),
            "max_radius": report.result.max_radius(),
            "mean_distance": round(report.result.mean_distance(), 3),
        },
    ),
)
def _execute_partition(graph, rng, config, policy):
    """Registry hook for one clustering draw over greedy-MIS centers.

    The policy's ``"reference"`` engine selects the heap-based
    multi-source Dijkstra specification; ``"windowed"`` (the default)
    the CSR frontier engine — bit-identical assignments under shared
    shifts.
    """
    config = config or PartitionConfig()
    if policy.validate:
        raise ProtocolError(
            "partition runs no radio windows, so validate=True cannot "
            "take effect; the contract checker applies to packet-level "
            "protocols"
        )
    _refuse_inert_faults(
        "partition",
        policy,
        "the clustering draw simulates no radio steps; inject faults "
        "into a packet-level protocol instead",
    )
    mis = sorted(greedy_independent_set(graph, rng, strategy="random"))
    engine = policy.engine_for(("windowed", "reference"), "windowed")
    if engine == "reference":
        clustering = partition_reference(graph, config.beta, mis, rng)
    else:
        clustering = partition(graph, config.beta, mis, rng)
    return clustering, None


__all__ = [
    "BGIConfig",
    "BroadcastConfig",
    "DecayConfig",
    "EEDConfig",
    "ICPConfig",
    "LeaderConfig",
    "PartitionConfig",
    "UptimeLeaderConfig",
    "WakeupConfig",
]
