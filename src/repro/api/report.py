"""RunReport: the structured record every :func:`repro.api.run` returns.

One protocol run produces one :class:`RunReport` — the protocol's own
result plus the execution facts every consumer used to re-derive
independently: radio-step count, trace totals, wall time, optional
tracemalloc peak, the resolved :class:`~repro.engine.policy
.ExecutionPolicy` echo (what actually executed, after ``"auto"`` and
the process-wide budget resolved), and provenance (seed, graph spec,
code version). The CLI prints them, ``run_trials*`` aggregates them,
and benchmarks persist their :meth:`RunReport.row` form into
``BENCH_*.json``.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..core.resulteq import ArrayEqMixin, values_equal
from ..engine.policy import ExecutionPolicy


@dataclasses.dataclass(frozen=True, eq=False)
class RunReport(ArrayEqMixin):
    """Outcome of one :func:`repro.api.run` call.

    Reports compare by *outcome*: ``run(...) == run(...)`` is True when
    protocol, result, steps, trace totals, resolved policy, and
    provenance all match — the corpus layer's cache-hit check. The
    measurement fields (:attr:`wall_time_s`, :attr:`peak_mem_bytes`)
    are excluded from comparison, since wall clock differs on every
    execution of the same outcome; ndarray payloads inside the nested
    result compare via :func:`numpy.array_equal`.

    Attributes
    ----------
    protocol:
        Registry name of the protocol that ran.
    result:
        The protocol's own result object (e.g.
        :class:`~repro.core.mis.MISResult`) — exactly what the legacy
        entry point returns, bit-identical on a shared seed.
    steps:
        Radio steps the run simulated (0 for round-accounted
        protocols, whose cost lives in the result's ledger).
    trace:
        Trace totals over the run: ``steps``, ``transmissions``,
        ``receptions`` (the latter two are 0 under a cheap trace,
        which skips detail accounting by design).
    wall_time_s:
        Wall-clock seconds of the protocol execution itself (setup —
        graph build, network construction — is excluded).
    peak_mem_bytes:
        Tracemalloc peak of the execution, or ``None`` when the run
        was not memory-measured (measurement taxes allocations, so it
        is opt-in; see ``run(..., measure_memory=True)``).
    policy:
        The **resolved** policy echo: the engine selection, delivery
        mode, and streaming knobs after ``"auto"`` and the
        process-wide budget default resolved — what a reader needs to
        reproduce the execution exactly. Protocols consult only the
        knobs they implement: a round-accounted run simulates no
        radio steps, so the delivery/streaming fields (and, outside
        packet mode, the engine) are necessarily inert there.
    provenance:
        Reproduction facts: ``seed`` (the integer seed, or ``None``
        when the caller passed a live generator), ``graph`` (family /
        ``n`` / ``edges``, or ``None`` for protocols that build their
        own topology), ``faults`` (``None`` for fault-free runs —
        including empty schedules — else the schedule's content
        ``digest``, its configured event counts, and the realized
        event counters the network recorded), ``version`` (the
        package version).
    """

    protocol: str
    result: Any
    steps: int
    trace: dict[str, int]
    wall_time_s: float = dataclasses.field(compare=False)
    peak_mem_bytes: int | None = dataclasses.field(compare=False)
    policy: ExecutionPolicy
    provenance: dict[str, Any]

    def __eq__(self, other: Any) -> bool:
        # Outcome equality, like the mixin — but the per-phase wall
        # buckets in provenance["timing"] are a measurement (they
        # differ on every execution of the same outcome), so they are
        # excluded exactly as wall_time_s is.
        if other is self:
            return True
        if type(other) is not type(self):
            return NotImplemented
        for field in dataclasses.fields(self):
            if not field.compare:
                continue
            a = getattr(self, field.name)
            b = getattr(other, field.name)
            if field.name == "provenance":
                a = {k: v for k, v in a.items() if k != "timing"}
                b = {k: v for k, v in b.items() if k != "timing"}
            if not values_equal(a, b):
                return False
        return True

    __hash__ = None  # type: ignore[assignment]

    def to_json(self, indent: int | None = None) -> str:
        """Serialize this report to the tagged-JSON wire format.

        The document round-trips exactly: ``RunReport.from_json(
        r.to_json()) == r`` under the report's own outcome equality
        (ndarray payloads byte-exact, sets/tuples/nested dataclasses
        reconstructed; see :mod:`repro.api.wire`). This is the
        experiment service's storage and HTTP format.
        """
        from .wire import report_to_json

        return report_to_json(self, indent=indent)

    @classmethod
    def from_json(cls, text: str | bytes) -> "RunReport":
        """Parse a :meth:`to_json` document back into a report."""
        from .wire import report_from_json

        return report_from_json(text)

    def row(self) -> dict[str, Any]:
        """Flatten to a JSON-ready dict (the ``BENCH_*.json`` row form).

        The protocol result itself is summarized to its type name —
        result objects carry arrays; benchmarks pick the scalar facts
        they need from :attr:`result` and merge them into the row.
        """
        graph = self.provenance.get("graph") or {}
        return {
            "protocol": self.protocol,
            "result_type": type(self.result).__name__,
            "steps": self.steps,
            "trace": dict(self.trace),
            "wall_time_s": self.wall_time_s,
            "peak_mem_bytes": self.peak_mem_bytes,
            "engine": self.policy.engine,
            "delivery": self.policy.delivery,
            "chunk_steps": self.policy.chunk_steps,
            "mem_budget": self.policy.mem_budget,
            "validate": self.policy.validate,
            "faults": (self.provenance.get("faults") or {}).get("digest"),
            "seed": self.provenance.get("seed"),
            "graph": dict(graph) if graph else None,
            "version": self.provenance.get("version"),
        }


__all__ = ["RunReport"]
