"""Command-line interface: run the paper's algorithms from a shell.

Subcommands mirror the library's entry points:

.. code-block:: bash

    python -m repro mis --graph udg --n 150 --seed 7
    python -m repro mis --n 150 --engine reference   # step-wise twin
    python -m repro mis --n 150 --delivery dense     # force dense windows
    python -m repro mis --n 100000 --mem-budget 256M # stream big runs
    python -m repro broadcast --graph grid --rows 3 --cols 40
    python -m repro broadcast --graph udg --n 80 --packet
    python -m repro leader --graph gnp --n 100 --p 0.08
    python -m repro leader --graph udg --n 80 --packet
    python -m repro icp --graph udg --n 120 --fused  # multiplexed ICP
    python -m repro partition --graph udg --n 120 --beta 0.25
    python -m repro classes --n 150

Every subcommand accepts ``--seed`` (default 0) and prints a short
human-readable report; machine-readable output is available with
``--json``.

Packet-level subcommands run on the windowed protocol engine
(:mod:`repro.engine`) by default; ``--engine reference`` selects the
retained step-wise implementations (bit-identical seeded results, much
slower), and ``--packet`` switches broadcast/leader from round-accounted
to fully simulated radio steps. ``--delivery {auto,sparse,dense}``
selects the window execution strategy (bit-identical; ``auto`` routes
per window row on mask density), and ``icp --fused`` runs one
Intra-Cluster Propagation phase through the window-multiplexing
combinator instead of step-at-a-time decision points.
``--chunk-steps``/``--mem-budget`` bound the streamed slab height of
window execution — memory knobs only (bit-identical); ``--mem-budget
256M`` is what makes ``n >= 10^5`` runs practical on a laptop.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any

import networkx as nx
import numpy as np

from . import graphs
from .core import (
    CompeteConfig,
    MISConfig,
    broadcast,
    broadcast_packet_level,
    build_icp_inputs,
    compute_mis,
    elect_leader,
    elect_leader_packet,
    intra_cluster_propagation,
    partition,
)
from .graphs import greedy_independent_set
from .radio import RadioNetwork


def _build_graph(args: argparse.Namespace, rng: np.random.Generator):
    """Construct the graph a subcommand asked for."""
    kind = args.graph
    if kind == "udg":
        return graphs.random_udg(args.n, side=args.side, rng=rng)
    if kind == "grid":
        return graphs.grid_udg(args.rows, args.cols, rng)
    if kind == "gnp":
        return graphs.connected_gnp(args.n, args.p, rng)
    if kind == "chain":
        return graphs.clique_chain(args.chains, args.clique_size)
    if kind == "tree":
        return graphs.random_tree(args.n, rng)
    if kind == "path":
        return graphs.path(args.n)
    if kind == "clique":
        return graphs.clique(args.n)
    raise ValueError(f"unknown graph kind: {kind!r}")


def _add_graph_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--graph",
        default="udg",
        choices=["udg", "grid", "gnp", "chain", "tree", "path", "clique"],
        help="graph family (default: udg)",
    )
    parser.add_argument("--n", type=int, default=100, help="node count")
    parser.add_argument(
        "--side", type=float, default=5.0, help="UDG box side length"
    )
    parser.add_argument("--rows", type=int, default=3, help="grid rows")
    parser.add_argument("--cols", type=int, default=30, help="grid cols")
    parser.add_argument("--p", type=float, default=0.08, help="G(n,p) density")
    parser.add_argument(
        "--chains", type=int, default=8, help="clique-chain length"
    )
    parser.add_argument(
        "--clique-size", type=int, default=10, help="clique-chain clique size"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--json", action="store_true", help="print machine-readable JSON"
    )


def _parse_mem_budget(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (e.g. ``64M``)."""
    original = text
    text = text.strip()
    scale = 1
    suffixes = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    if text and text[-1].lower() in suffixes:
        scale = suffixes[text[-1].lower()]
        text = text[:-1]
    try:
        value = int(text) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected bytes with optional K/M/G suffix, got {original!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"memory budget must be >= 1 byte, got {value}"
        )
    return value


def _parse_chunk_steps(text: str) -> int:
    """Parse a positive slab height (argparse type for --chunk-steps)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"chunk steps must be >= 1, got {value}"
        )
    return value


def _add_delivery_option(parser: argparse.ArgumentParser) -> None:
    from .radio.network import DELIVERY_MODES

    parser.add_argument(
        "--delivery",
        default="auto",
        choices=list(DELIVERY_MODES),
        help=(
            "window execution strategy (bit-identical; auto routes per "
            "window row on mask density)"
        ),
    )
    parser.add_argument(
        "--chunk-steps",
        type=_parse_chunk_steps,
        default=None,
        metavar="K",
        help=(
            "streamed-window slab height in radio steps (memory knob "
            "only; bit-identical at any setting)"
        ),
    )
    parser.add_argument(
        "--mem-budget",
        type=_parse_mem_budget,
        default=None,
        metavar="BYTES",
        help=(
            "target peak memory for window execution, with optional "
            "K/M/G suffix (e.g. 64M); picks --chunk-steps from a "
            "bytes-per-step cost model"
        ),
    )


def _emit(args: argparse.Namespace, report: dict[str, Any]) -> None:
    if args.json:
        print(json.dumps(report, default=str))
    else:
        for key, value in report.items():
            print(f"{key}: {value}")


def _cmd_mis(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    g = _build_graph(args, rng)
    net = RadioNetwork(g)
    config = MISConfig(oracle_degree=args.oracle_degree, eed_C=args.eed_c)
    result = compute_mis(
        net, rng, config, engine=args.engine, delivery=args.delivery,
        chunk_steps=args.chunk_steps, mem_budget=args.mem_budget,
    )
    valid = graphs.is_maximal_independent_set(g, result.mis)
    _emit(
        args,
        {
            "graph": g.graph.get("family"),
            "n": g.number_of_nodes(),
            "engine": args.engine,
            "delivery": args.delivery,
            "mis_size": result.size,
            "rounds": result.rounds_used,
            "radio_steps": result.steps_used,
            "valid": valid,
        },
    )
    return 0 if valid else 1


def _cmd_icp(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    g = nx.convert_node_labels_to_integers(_build_graph(args, rng))
    if not 0 <= args.source < g.number_of_nodes():
        print(f"error: source {args.source} out of range", file=sys.stderr)
        return 2
    if args.fused and args.engine not in (None, "fused"):
        print(
            f"error: --fused contradicts --engine {args.engine}",
            file=sys.stderr,
        )
        return 2
    engine = "fused" if args.fused else (args.engine or "windowed")
    clustering, schedule, knowledge = build_icp_inputs(
        g, rng, beta=args.beta, sources={args.source: 1}
    )
    net = RadioNetwork(g)
    result = intra_cluster_propagation(
        net, clustering, schedule, knowledge, args.ell, rng,
        with_background=not args.no_background,
        engine=engine, delivery=args.delivery,
        chunk_steps=args.chunk_steps, mem_budget=args.mem_budget,
    )
    informed = int((result.knowledge >= 0).sum())
    _emit(
        args,
        {
            "graph": g.graph.get("family"),
            "n": g.number_of_nodes(),
            "engine": engine,
            "delivery": args.delivery,
            "ell": args.ell,
            "clusters": len(clustering.used_centers()),
            "radio_steps": result.steps,
            "informed": informed,
        },
    )
    return 0 if informed > 1 or g.number_of_nodes() == 1 else 1


def _cmd_broadcast(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    g = _build_graph(args, rng)
    if args.packet:
        if args.baseline:
            print(
                "error: --baseline applies to the round-accounted "
                "pipeline only; the packet level has no [7] baseline mode",
                file=sys.stderr,
            )
            return 2
        result = broadcast_packet_level(g, args.source, rng)
        _emit(
            args,
            {
                "graph": g.graph.get("family"),
                "n": g.number_of_nodes(),
                "D": graphs.diameter(g),
                "mode": "packet (windowed engine)",
                "delivered": result.delivered,
                "radio_steps": result.steps,
                "phases": result.phases,
                "stage_steps": result.stage_steps,
            },
        )
        return 0 if result.delivered else 1
    config = CompeteConfig(
        centers_mode="all" if args.baseline else "mis"
    )
    result = broadcast(g, args.source, rng, config=config)
    _emit(
        args,
        {
            "graph": g.graph.get("family"),
            "n": g.number_of_nodes(),
            "D": graphs.diameter(g),
            "mode": config.centers_mode,
            "delivered": result.delivered,
            "total_rounds": result.total_rounds,
            "setup_rounds": result.setup_rounds,
            "propagation_rounds": result.propagation_rounds,
        },
    )
    return 0 if result.delivered else 1


def _cmd_leader(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    g = _build_graph(args, rng)
    if args.packet:
        packet = elect_leader_packet(RadioNetwork(g), rng)
        _emit(
            args,
            {
                "graph": g.graph.get("family"),
                "n": g.number_of_nodes(),
                "mode": "packet (windowed engine)",
                "elected": packet.elected,
                "leader": packet.leader,
                "candidates": len(packet.candidates),
                "radio_steps": packet.steps,
            },
        )
        return 0 if packet.elected else 1
    result = elect_leader(g, rng)
    _emit(
        args,
        {
            "graph": g.graph.get("family"),
            "n": g.number_of_nodes(),
            "elected": result.elected,
            "leader": result.leader,
            "candidates": len(result.candidates),
            "total_rounds": result.total_rounds,
        },
    )
    return 0 if result.elected else 1


def _cmd_partition(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    g = _build_graph(args, rng)
    mis = sorted(greedy_independent_set(g, rng, strategy="random"))
    clustering = partition(g, args.beta, mis, rng)
    _emit(
        args,
        {
            "graph": g.graph.get("family"),
            "n": g.number_of_nodes(),
            "beta": args.beta,
            "centers": len(mis),
            "clusters_used": len(clustering.used_centers()),
            "max_radius": clustering.max_radius(),
            "mean_distance": round(clustering.mean_distance(), 3),
        },
    )
    return 0


def _cmd_classes(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    n = args.n
    rows = []
    for name, g in {
        "udg": graphs.random_udg(n, max(2.0, (n / 4.0) ** 0.5), rng),
        "quasi-udg": graphs.random_qudg(n, max(2.0, (n / 5.0) ** 0.5), rng),
        "path": graphs.path(n),
        "star": graphs.star(n),
        "tree": graphs.random_tree(n, rng),
    }.items():
        summary = graphs.summarize(g)
        rows.append(
            {
                "family": name,
                "n": summary.n,
                "D": summary.D,
                "alpha": summary.alpha,
                "log_D_alpha": round(summary.log_d_alpha, 2),
            }
        )
    if args.json:
        print(json.dumps(rows))
    else:
        for row in rows:
            print(row)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Radio network algorithms parametrized by independence "
            "number (Davies, PODC 2023 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mis = sub.add_parser("mis", help="run Radio MIS (Algorithm 7)")
    _add_graph_options(mis)
    mis.add_argument(
        "--oracle-degree",
        action="store_true",
        help="skip EstimateEffectiveDegree (documented speed knob)",
    )
    mis.add_argument("--eed-c", type=int, default=8, help="Algorithm 6's C")
    mis.add_argument(
        "--engine",
        default="windowed",
        choices=["windowed", "reference"],
        help="delivery engine (reference = step-wise twin, bit-identical)",
    )
    _add_delivery_option(mis)
    mis.set_defaults(func=_cmd_mis)

    icp = sub.add_parser(
        "icp", help="one Intra-Cluster Propagation phase (Algorithms 9-10)"
    )
    _add_graph_options(icp)
    icp.add_argument("--source", type=int, default=0, help="informed node")
    icp.add_argument("--beta", type=float, default=0.25, help="shift rate")
    icp.add_argument(
        "--ell", type=int, default=4, help="propagation distance"
    )
    icp.add_argument(
        "--engine",
        default=None,
        choices=["windowed", "reference", "fused"],
        help=(
            "delivery engine (default windowed; fused = window-"
            "multiplexed background, reference = step-wise twin; all "
            "bit-identical)"
        ),
    )
    icp.add_argument(
        "--fused",
        action="store_true",
        help="shorthand for --engine fused",
    )
    icp.add_argument(
        "--no-background",
        action="store_true",
        help="drop the Algorithm 10 Decay background process",
    )
    _add_delivery_option(icp)
    icp.set_defaults(func=_cmd_icp)

    bc = sub.add_parser("broadcast", help="broadcast via Compete (Thm 7)")
    _add_graph_options(bc)
    bc.add_argument("--source", type=int, default=0, help="source node")
    bc.add_argument(
        "--baseline",
        action="store_true",
        help="use the [7] all-nodes-centers baseline instead",
    )
    bc.add_argument(
        "--packet",
        action="store_true",
        help="simulate every radio step on the windowed engine",
    )
    bc.set_defaults(func=_cmd_broadcast)

    leader = sub.add_parser("leader", help="leader election (Algorithm 3)")
    _add_graph_options(leader)
    leader.add_argument(
        "--packet",
        action="store_true",
        help="simulate every radio step on the windowed engine",
    )
    leader.set_defaults(func=_cmd_leader)

    part = sub.add_parser(
        "partition", help="one Partition(beta, MIS) clustering draw"
    )
    _add_graph_options(part)
    part.add_argument("--beta", type=float, default=0.25, help="shift rate")
    part.set_defaults(func=_cmd_partition)

    classes = sub.add_parser(
        "classes", help="summarize graph classes (n, D, alpha)"
    )
    _add_graph_options(classes)
    classes.set_defaults(func=_cmd_classes)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
