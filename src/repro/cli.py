"""Command-line interface: the protocol registry, from a shell.

Every protocol subcommand is **generated from the registry**
(:mod:`repro.api`): one shared graph flag group, one shared execution
policy flag group, plus each protocol's own flags from its
:class:`~repro.api.registry.CLISpec`. No subcommand parses policy
knobs by hand anymore — ``--engine``, ``--delivery``,
``--chunk-steps``, ``--mem-budget``, and ``--validate`` are the same
five flags everywhere, refused the same way everywhere (unknown
values are named alongside the accepted ones).

.. code-block:: bash

    python -m repro mis --graph udg --n 150 --seed 7
    python -m repro mis --n 150 --engine reference   # step-wise twin
    python -m repro mis --n 150 --delivery dense     # force dense windows
    python -m repro mis --n 100000 --mem-budget 256M # stream big runs
    python -m repro broadcast --graph grid --rows 3 --cols 40
    python -m repro broadcast --graph udg --n 80 --packet
    python -m repro leader --graph gnp --n 100 --p 0.08
    python -m repro icp --graph udg --n 120 --fused  # multiplexed ICP
    python -m repro eed --graph udg --n 200 --desire 0.5
    python -m repro decay --graph udg --n 200 --iterations 8
    python -m repro bgi --graph udg --n 150
    python -m repro bgi --n 150 --jam 0.2           # adversarial jamming
    python -m repro mis_restart --n 150 --churn 0.3 # MIS under churn
    python -m repro leader_uptime --n 150 --crash-rate 0.1 --threshold 0.6
    python -m repro wakeup --believed-n 4096 --k 64
    python -m repro partition --graph udg --n 120 --beta 0.25
    python -m repro mis --corpus corpus/udg-n100000-3f1c9a2b44d0 --seed 7
    python -m repro classes --n 150

Every subcommand accepts ``--seed`` (default 0) and prints a short
human-readable report; machine-readable output is available with
``--json``. Protocol runs go through :func:`repro.api.run`, so the
printed report is a view of the same :class:`~repro.api.report
.RunReport` the library returns — engine, delivery, radio steps, wall
time, and the protocol's own fields. All engine/delivery/streaming
flags are performance or memory knobs only: seeded results are
bit-identical whatever the policy (``--validate`` re-checks exactly
that at runtime, slowly). ``--mem-budget 256M`` is what makes
``n >= 10^5`` runs practical on a laptop.

The fault-injection group (``--crash-rate``, ``--churn``, ``--jam``,
``--hetero``, plus ``--fault-seed``/``--fault-horizon``) samples a
seeded :class:`~repro.faults.FaultSchedule` over the built graph and
folds it into the policy — the one flag group that *does* change
semantics. Protocols that cannot realize faults (round-accounted
pipelines, ``partition``) refuse them by name, exactly as the API
does.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Any

import networkx as nx
import numpy as np

from . import api, graphs
from .engine.policy import (
    parse_mem_budget,
    validate_chunk_steps,
)
from .engine.kernels import ALL_DELIVERY_MODES
from .engine.residual import RESTRICT_MODES
from .radio.errors import ProtocolError


def _build_graph(args: argparse.Namespace, rng: np.random.Generator):
    """Construct the graph a subcommand asked for."""
    if getattr(args, "corpus", None) is not None:
        # A stored corpus entry replaces the generated families:
        # mmap-loaded CSR arrays, zero-copy, digest into provenance.
        from . import corpus

        return corpus.load_graph(args.corpus)
    kind = args.graph
    if kind == "udg":
        return graphs.random_udg(args.n, side=args.side, rng=rng)
    if kind == "grid":
        return graphs.grid_udg(args.rows, args.cols, rng)
    if kind == "gnp":
        return graphs.connected_gnp(args.n, args.p, rng)
    if kind == "chain":
        return graphs.clique_chain(args.chains, args.clique_size)
    if kind == "tree":
        return graphs.random_tree(args.n, rng)
    if kind == "path":
        return graphs.path(args.n)
    if kind == "clique":
        return graphs.clique(args.n)
    raise ProtocolError(f"unknown graph kind: {kind!r}")


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    """Flags every subcommand shares (seeding and output form)."""
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--json", action="store_true", help="print machine-readable JSON"
    )


def _add_graph_options(parser: argparse.ArgumentParser) -> None:
    """The shared graph-family flag group."""
    parser.add_argument(
        "--graph",
        default="udg",
        choices=["udg", "grid", "gnp", "chain", "tree", "path", "clique"],
        help="graph family (default: udg)",
    )
    parser.add_argument("--n", type=int, default=100, help="node count")
    parser.add_argument(
        "--side", type=float, default=5.0, help="UDG box side length"
    )
    parser.add_argument("--rows", type=int, default=3, help="grid rows")
    parser.add_argument("--cols", type=int, default=30, help="grid cols")
    parser.add_argument("--p", type=float, default=0.08, help="G(n,p) density")
    parser.add_argument(
        "--chains", type=int, default=8, help="clique-chain length"
    )
    parser.add_argument(
        "--clique-size", type=int, default=10, help="clique-chain clique size"
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="PATH",
        help="run on a stored corpus entry (mmap-loaded CSR graph) "
        "instead of generating one; overrides the --graph family flags",
    )


def _parse_mem_budget_arg(text: str) -> int:
    """Argparse type for ``--mem-budget``: the shared parser's refusal,
    surfaced as an argparse error."""
    try:
        return parse_mem_budget(text)
    except ProtocolError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_chunk_steps_arg(text: str) -> int:
    """Argparse type for ``--chunk-steps``."""
    try:
        return validate_chunk_steps(int(text))
    except (ProtocolError, ValueError) as exc:
        raise argparse.ArgumentTypeError(
            f"chunk steps must be a positive integer, got {text!r} "
            f"({exc})"
        ) from None


def _add_policy_options(
    parser: argparse.ArgumentParser, spec: api.ProtocolSpec
) -> None:
    """The shared execution-policy flag group, one per protocol.

    The ``--engine`` choice list is the protocol's own engine set (plus
    ``auto``), so ``--help`` documents exactly what each protocol
    implements and argparse refuses the rest by name — the CLI face of
    the registry's uniform refusals.
    """
    group = parser.add_argument_group("execution policy")
    group.add_argument(
        "--engine",
        default="auto",
        choices=("auto",) + spec.engines,
        help=(
            "execution engine (auto picks the protocol's fastest "
            "verified path; all variants are bit-identical on a seed)"
        ),
    )
    group.add_argument(
        "--delivery",
        default="auto",
        choices=list(ALL_DELIVERY_MODES),
        help=(
            "window execution strategy (bit-identical; auto routes per "
            "window row on mask density and COO output size, and runs "
            "the fused coin+fault+delivery pass on plans that declare "
            "a separable form; pipeline forces that pass compiled; "
            "numba/cupy/pipeline need their optional package installed "
            "and refuse by name otherwise)"
        ),
    )
    group.add_argument(
        "--restrict",
        default="auto",
        choices=list(RESTRICT_MODES),
        help=(
            "active-set-restricted (residual-graph) delivery for "
            "streamed plans that declare a transmit support "
            "(bit-identical; auto restricts when the live set is small "
            "enough to pay)"
        ),
    )
    group.add_argument(
        "--chunk-steps",
        type=_parse_chunk_steps_arg,
        default=None,
        metavar="K",
        help=(
            "streamed-window slab height in radio steps (memory knob "
            "only; bit-identical at any setting)"
        ),
    )
    group.add_argument(
        "--mem-budget",
        type=_parse_mem_budget_arg,
        default=None,
        metavar="BYTES",
        help=(
            "target peak memory for window execution, with optional "
            "K/M/G suffix (e.g. 64M); picks --chunk-steps from a "
            "bytes-per-step cost model"
        ),
    )
    group.add_argument(
        "--validate",
        action="store_true",
        help=(
            "re-execute every window step-by-step on shadow networks "
            "and assert bit-identical delivery (slow; diagnostics)"
        ),
    )


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    """The shared fault-injection flag group (semantics knobs).

    Rates sample a seeded :class:`~repro.faults.FaultSchedule` over
    the built graph; all-zero rates mean no schedule at all
    (bit-identical to today's runs).
    """
    group = parser.add_argument_group("fault injection")
    group.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="fraction of nodes that crash at a random step",
    )
    group.add_argument(
        "--churn",
        type=float,
        default=0.0,
        metavar="R",
        help=(
            "sleep/wake churn rate: fraction of nodes with a sleep "
            "interval, and of late joiners"
        ),
    )
    group.add_argument(
        "--jam",
        type=float,
        default=0.0,
        metavar="R",
        help="adversarial jamming rate: expected fraction of jammed steps",
    )
    group.add_argument(
        "--hetero",
        type=float,
        default=0.0,
        metavar="R",
        help=(
            "heterogeneity rate: fraction of nodes with scaled "
            "transmit probability and a finite energy budget"
        ),
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault schedule draw (independent of --seed)",
    )
    group.add_argument(
        "--fault-horizon",
        type=int,
        default=None,
        metavar="H",
        help=(
            "declared step horizon of the schedule (jam placement and "
            "uptime measurement; default 64 ceil(log2 n))"
        ),
    )


def _faults_from_args(
    args: argparse.Namespace, graph
) -> "api.FaultSchedule | None":
    """Sample the flag group's schedule over the built graph.

    Needs the graph (``n`` fixes the node range), so it runs after
    graph construction; returns None when every rate is zero.
    """
    if not any((args.crash_rate, args.churn, args.jam, args.hetero)):
        return None
    n = graph.number_of_nodes()
    horizon = (
        args.fault_horizon
        if args.fault_horizon is not None
        else 64 * max(1, int(np.ceil(np.log2(max(2, n)))))
    )
    return api.FaultSchedule.sample(
        n,
        horizon,
        seed=args.fault_seed,
        crash_rate=args.crash_rate,
        churn=args.churn,
        jam=args.jam,
        hetero=args.hetero,
    )


def _emit(args: argparse.Namespace, report: dict[str, Any]) -> None:
    """Print a report dict as key/value lines or JSON."""
    if args.json:
        print(json.dumps(report, default=str))
    else:
        for key, value in report.items():
            print(f"{key}: {value}")


def _policy_from_args(args: argparse.Namespace) -> api.ExecutionPolicy:
    """The shared flag group, folded into one policy value."""
    return api.ExecutionPolicy(
        engine=args.engine,
        delivery=args.delivery,
        chunk_steps=args.chunk_steps,
        mem_budget=args.mem_budget,
        validate=args.validate,
        restrict=args.restrict,
    )


def _run_protocol(spec: api.ProtocolSpec, args: argparse.Namespace) -> int:
    """The one generated subcommand body behind every protocol.

    Builds the graph and policy from the shared flag groups, the
    config from the spec's own flags, executes through
    :func:`repro.api.run`, and prints the shared report prefix plus
    the spec's fields. Policy/config refusals print to stderr and
    exit 2 — uniformly, whatever the protocol.
    """
    rng = np.random.default_rng(args.seed)
    try:
        policy = _policy_from_args(args)
        if spec.cli.tweak_policy is not None:
            policy = spec.cli.tweak_policy(args, policy)
        config = spec.cli.config_from_args(args)
        if spec.accepts == "none":
            graph = None
        else:
            graph = _build_graph(args, rng)
            if spec.cli.relabel and not hasattr(graph, "csr_arrays"):
                # Corpus graphs are identity-labeled by construction.
                graph = nx.convert_node_labels_to_integers(graph)
            faults = _faults_from_args(args, graph)
            if faults is not None:
                policy = dataclasses.replace(policy, faults=faults)
        report = api.run(
            spec, graph, rng=rng, config=config, policy=policy
        )
    except ProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload: dict[str, Any] = {}
    if graph is not None:
        payload["graph"] = graph.graph.get("family")
        payload["n"] = graph.number_of_nodes()
    payload["engine"] = report.policy.engine
    payload["delivery"] = report.policy.delivery
    payload.update(spec.cli.report_fields(report, graph, config))
    _emit(args, payload)
    return spec.cli.exit_code(report, payload)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the experiment service and serve until interrupted."""
    import asyncio

    from .service import ExperimentService

    try:
        service = ExperimentService(
            args.reports,
            args.corpus,
            host=args.host,
            port=args.port,
            workers=args.workers,
            campaign_slots=args.campaign_slots,
        )
    except ProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        await service.start()
        print(
            f"repro service on http://{service.host}:{service.port} "
            f"(reports: {service.reports.directory}, "
            f"workers: {service.workers})",
            flush=True,
        )
        await service.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    """Client-side campaign verbs: submit / status / watch."""
    from .service import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.action == "submit":
            if args.spec == "-":
                document = sys.stdin.read()
            else:
                with open(args.spec) as handle:
                    document = handle.read()
            status = client.submit(document)
            if args.wait:
                status = client.wait(status["id"])
        elif args.action == "status":
            status = client.status(args.id)
        else:  # watch
            status = None
            for snapshot in client.stream(args.id):
                status = snapshot
                if not args.json:
                    print(
                        f"{snapshot['state']}: "
                        f"{snapshot['completed']}/{snapshot['total']} "
                        f"({snapshot['cached']} cached, "
                        f"{snapshot['failed']} failed)"
                    )
            if status is None:
                raise ProtocolError(
                    f"campaign {args.id!r} produced no status snapshots"
                )
            if not args.json:
                return 0 if status["state"] == "completed" else 1
    except (ServiceError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot reach service: {exc}", file=sys.stderr)
        return 2
    _emit(args, status)
    return 0 if status.get("state") != "failed" else 1


def _cmd_classes(args: argparse.Namespace) -> int:
    """Summarize the paper's graph classes (not a protocol run)."""
    rng = np.random.default_rng(args.seed)
    n = args.n
    rows = []
    for name, g in {
        "udg": graphs.random_udg(n, max(2.0, (n / 4.0) ** 0.5), rng),
        "quasi-udg": graphs.random_qudg(n, max(2.0, (n / 5.0) ** 0.5), rng),
        "path": graphs.path(n),
        "star": graphs.star(n),
        "tree": graphs.random_tree(n, rng),
    }.items():
        summary = graphs.summarize(g)
        rows.append(
            {
                "family": name,
                "n": summary.n,
                "D": summary.D,
                "alpha": summary.alpha,
                "log_D_alpha": round(summary.log_d_alpha, 2),
            }
        )
    if args.json:
        print(json.dumps(rows))
    else:
        for row in rows:
            print(row)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for tests).

    Protocol subcommands are generated from the registry — adding a
    protocol with CLI metadata to :mod:`repro.api.protocols` grows the
    CLI with no parser code here.
    """
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Radio network algorithms parametrized by independence "
            "number (Davies, PODC 2023 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for spec in api.list_protocols():
        if spec.cli is None:
            continue
        sp = sub.add_parser(spec.name, help=spec.cli.help)
        _add_common_options(sp)
        if spec.accepts != "none":
            _add_graph_options(sp)
            _add_fault_options(sp)
        _add_policy_options(sp, spec)
        if spec.cli.add_arguments is not None:
            spec.cli.add_arguments(sp)
        sp.set_defaults(
            func=lambda a, _spec=spec: _run_protocol(_spec, a)
        )

    classes = sub.add_parser(
        "classes", help="summarize graph classes (n, D, alpha)"
    )
    _add_common_options(classes)
    _add_graph_options(classes)
    classes.set_defaults(func=_cmd_classes)

    serve = sub.add_parser(
        "serve",
        help="host the experiment service (campaigns over HTTP)",
    )
    serve.add_argument(
        "--reports",
        required=True,
        metavar="DIR",
        help="report store directory (created on first write)",
    )
    serve.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="corpus store that resolves submitted graph digests",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8471, help="bind port (0 = pick free)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool width per campaign (1 = in-process serial)",
    )
    serve.add_argument(
        "--campaign-slots",
        type=int,
        default=2,
        help="campaigns executing concurrently; the rest queue",
    )
    serve.set_defaults(func=_cmd_serve)

    campaign = sub.add_parser(
        "campaign", help="submit and track campaigns on a service"
    )
    campaign_sub = campaign.add_subparsers(dest="action", required=True)
    for action, doc in (
        ("submit", "submit a CampaignSpec JSON document"),
        ("status", "one status snapshot of a campaign"),
        ("watch", "stream status updates until the campaign settles"),
    ):
        ap = campaign_sub.add_parser(action, help=doc)
        ap.add_argument("--host", default="127.0.0.1")
        ap.add_argument("--port", type=int, default=8471)
        ap.add_argument(
            "--json", action="store_true",
            help="print machine-readable JSON",
        )
        if action == "submit":
            ap.add_argument(
                "spec", help="spec document path, or - for stdin"
            )
            ap.add_argument(
                "--wait",
                action="store_true",
                help="block until the campaign settles",
            )
        else:
            ap.add_argument("id", help="campaign id (from submit)")
        ap.set_defaults(func=_cmd_campaign)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed early (`repro campaign status | head`);
        # suppress the traceback and exit like a well-behaved filter.
        # stdout's buffer still holds unflushable bytes — detach it so
        # interpreter shutdown doesn't print a second error.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
