"""Quickstart: the full toolchain on one unit disk graph.

Builds a random sensor-style unit disk graph, computes a maximal
independent set with the paper's Radio MIS (Theorem 14), clusters the
graph with Partition(beta, MIS), and runs broadcast (Theorem 7) and
leader election (Theorem 8), printing the round accounting for each.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.core import (
    MISConfig,
    broadcast,
    compute_mis,
    elect_leader,
    partition,
)
from repro.radio import RadioNetwork


def main() -> None:
    rng = np.random.default_rng(2023)

    # --- a connected unit disk graph (nodes in a 8x8 box, radius 1) -----
    graph = graphs.random_udg(n=250, side=8.0, rng=rng)
    summary = graphs.summarize(graph)
    print("graph:", summary.row())

    # --- Radio MIS (Algorithm 7), packet-level --------------------------
    net = RadioNetwork(graph)
    mis = compute_mis(net, rng, MISConfig(oracle_degree=False, eed_C=8))
    print(
        f"\nRadio MIS: {mis.size} nodes in {mis.rounds_used} rounds / "
        f"{mis.steps_used} radio steps (log^3 n = "
        f"{np.log2(graph.number_of_nodes())**3:.0f})"
    )
    assert graphs.is_maximal_independent_set(graph, mis.mis)

    # --- Partition(beta, MIS) — the paper's clustering change -----------
    clustering = partition(graph, beta=0.25, centers=sorted(mis.mis), rng=rng)
    print(
        f"Partition(0.25, MIS): {len(clustering.used_centers())} clusters, "
        f"max radius {clustering.max_radius()}, "
        f"mean node-to-center distance {clustering.mean_distance():.2f}"
    )

    # --- broadcast via Compete({source}) ---------------------------------
    result = broadcast(graph, source=0, rng=rng)
    print(
        f"\nbroadcast: delivered={result.delivered} in "
        f"{result.total_rounds} charged rounds "
        f"({result.setup_rounds} setup + {result.propagation_rounds} "
        f"propagation)"
    )
    print(result.ledger.summary())

    # --- leader election (Algorithm 3) -----------------------------------
    election = elect_leader(graph, rng)
    if election.elected:
        print(
            f"\nleader election: node {election.leader} elected with ID "
            f"{election.leader_id} among {len(election.candidates)} "
            f"candidates, {election.total_rounds} charged rounds"
        )
    else:
        print("\nleader election: unlucky run (whp event failed); re-run")


if __name__ == "__main__":
    main()
