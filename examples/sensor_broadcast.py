"""Sensor-field broadcast: the paper's headline improvement, visualized.

Scenario: a long corridor of wireless sensors (a thin unit disk grid —
think pipeline or tunnel monitoring), where the diameter D is large but
the independence number alpha is only poly(D). The paper's algorithm
broadcasts in O(D + polylog n) rounds (Corollary 9); the classic BGI
Decay broadcast pays O(D log n). This example sweeps corridor lengths
and prints both, plus the [7] baseline that parametrizes by n.

Run:  python examples/sensor_broadcast.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import baselines, graphs
from repro.analysis import TextTable
from repro.core import CompeteConfig, broadcast
from repro.radio import RadioNetwork


def main() -> None:
    rng = np.random.default_rng(7)
    table = TextTable(
        [
            "corridor",
            "n",
            "D",
            "alpha",
            "ours(prop)",
            "CD21(prop)",
            "BGI(steps)",
            "ours/D",
            "BGI/(D log n)",
        ],
        title="Broadcast on sensor corridors (propagation rounds)",
    )

    for length in (20, 40, 60, 80):
        graph = graphs.grid_udg(rows=3, cols=length, rng=rng)
        n = graph.number_of_nodes()
        d = graphs.diameter(graph)
        alpha = graphs.exact_independence_number(graph)

        ours = broadcast(graph, 0, rng).propagation_rounds
        cd21 = broadcast(
            graph, 0, rng, config=CompeteConfig(centers_mode="all")
        ).propagation_rounds
        net = RadioNetwork(graph)
        bgi = baselines.bgi_broadcast(net, 0, rng).steps

        table.add_row(
            [
                f"3x{length}",
                n,
                d,
                alpha,
                ours,
                cd21,
                bgi,
                ours / d,
                bgi / (d * math.log2(n)),
            ]
        )

    table.print()
    print(
        "\nReading the table: 'ours/D' stays roughly flat (the paper's\n"
        "O(D) leading term on growth-bounded graphs), while BGI needs\n"
        "~(D log n) steps — the gap widens with the corridor."
    )


if __name__ == "__main__":
    main()
