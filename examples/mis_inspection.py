"""Inside Radio MIS: desire levels, golden rounds, and the removal race.

The first MIS algorithm for general-graph radio networks (Section 4)
adapts Ghaffari's desire-level dynamics. This example runs it on a
clustered unit disk graph (dense hotspots joined in a chain — the kind
of degree heterogeneity that defeats naive marking) and prints the
per-round race: how many nodes marked, joined, and were removed, and how
many golden rounds (the analysis's progress certificates, Lemma 12)
occurred. It also contrasts with Luby's algorithm in the LOCAL model to
show what the radio model makes hard.

Run:  python examples/mis_inspection.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import baselines, graphs
from repro.analysis import TextTable
from repro.core import MISConfig, compute_mis
from repro.radio import RadioNetwork


def main() -> None:
    rng = np.random.default_rng(31)
    graph = graphs.clustered_udg(
        n_clusters=5, cluster_size=30, rng=rng, cluster_spread=0.25
    )
    n = graph.number_of_nodes()
    print(
        f"clustered UDG: n={n}, m={graph.number_of_edges()}, "
        f"max degree {max(d for _, d in graph.degree)}"
    )

    net = RadioNetwork(graph)
    result = compute_mis(net, rng, MISConfig(oracle_degree=False, eed_C=8))

    table = TextTable(
        ["round", "active", "marked", "joined", "removed", "golden1", "golden2"],
        title="\nRadio MIS round-by-round",
    )
    for record in result.history:
        table.add_row(
            [
                record.round_index,
                record.active_before,
                record.marked,
                record.joined,
                record.removed,
                record.golden_type1,
                record.golden_type2,
            ]
        )
    table.print()

    print(
        f"\nMIS size {result.size}, valid: "
        f"{graphs.is_maximal_independent_set(graph, result.mis)}"
    )
    log3 = math.log2(n) ** 3
    print(
        f"steps {result.steps_used} vs log^3 n = {log3:.0f} "
        f"(Theorem 14: O(log^3 n); ratio {result.steps_used / log3:.1f})"
    )

    luby = baselines.luby_mis(graph, rng)
    print(
        f"\nLuby in the LOCAL model: {luby.rounds} rounds but "
        f"{luby.messages} point-to-point messages — the free neighborhood "
        f"exchange radio networks cannot implement cheaply (Section 4.1)."
    )


if __name__ == "__main__":
    main()
