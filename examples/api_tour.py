"""Tour of the one front door: registry, policies, streamed runs.

Everything in this package runs through three names from
``repro.api`` — ``protocol_names()`` to discover, ``ExecutionPolicy``
to say *how*, and ``run()`` to execute and get a structured
``RunReport`` back. This script walks all three:

1. discover every registered protocol and print its declared engines;
2. run Radio MIS plainly, then re-run it under increasingly opinionated
   policies (forced reference engine, forced dense delivery, contract
   validation) and check the seeded results never change — the knobs
   are performance/diagnostics knobs only;
3. run a larger MIS *streamed* under a tight peak-memory budget — the
   out-of-core path that makes ``n >= 10^5`` runs laptop-sized —
   and show the RunReport's resolved-policy echo and provenance.

Run:  PYTHONPATH=src python examples/api_tour.py

CI executes this script as a smoke step, so the tour is guaranteed to
stay runnable.
"""

from __future__ import annotations

import numpy as np

import repro.api as api
from repro import graphs


def tour_registry() -> None:
    """Step 1: what can run? Ask the registry, not the docs."""
    print("== registry ==")
    for spec in api.list_protocols():
        engines = "/".join(spec.engines)
        print(f"  {spec.name:10s} {spec.title}  [engines: {engines}]")


def tour_policies() -> tuple[int, int]:
    """Step 2: policies change execution, never results."""
    print("\n== policies (one seed, four executions) ==")
    g = graphs.random_udg(n=220, side=7.0, rng=np.random.default_rng(11))
    config = api.get_protocol("mis").config_cls(eed_C=4, record_golden=False)
    policies = {
        "auto": api.ExecutionPolicy(),
        "reference engine": api.ExecutionPolicy(engine="reference"),
        "forced dense": api.ExecutionPolicy(delivery="dense"),
        "validated": api.ExecutionPolicy(validate=True),
    }
    sizes, steps = set(), set()
    for label, policy in policies.items():
        report = api.run("mis", g, seed=7, config=config, policy=policy)
        sizes.add(report.result.size)
        steps.add(report.steps)
        print(
            f"  {label:17s} engine={report.policy.engine:9s} "
            f"mis={report.result.size:3d} steps={report.steps:6d} "
            f"wall={report.wall_time_s:.3f}s"
        )
    assert len(sizes) == 1 and len(steps) == 1, "policies must not change results"
    print("  -> identical results under every policy (as promised)")
    return sizes.pop(), steps.pop()


def tour_streaming() -> None:
    """Step 3: a bigger MIS, streamed under a peak-memory budget."""
    print("\n== streamed large-n MIS (one run() call) ==")
    n = 3000
    side = float(np.sqrt(n * np.pi / 9.0))  # ~9 average degree
    g = graphs.random_udg(
        n, side, np.random.default_rng(23), connected=False
    )
    policy = api.ExecutionPolicy(
        mem_budget=api.parse_mem_budget("8M"), trace="cheap"
    )
    report = api.run(
        "mis",
        g,
        seed=23,
        config=api.get_protocol("mis").config_cls(
            record_golden=False, eed_C=8
        ),
        policy=policy,
        measure_memory=True,
    )
    echo = report.policy
    print(
        f"  n={n}: {report.result.size} MIS nodes, {report.steps} radio "
        f"steps in {report.wall_time_s:.1f}s"
    )
    print(
        f"  resolved policy: engine={echo.engine}, "
        f"chunk_steps={echo.chunk_steps} (from the 8M budget), "
        f"peak={report.peak_mem_bytes / 2**20:.0f} MiB"
    )
    print(f"  provenance: {report.provenance}")
    assert report.policy.chunk_steps is not None, "budget must resolve"


def main() -> None:
    """Run the three tour stops in order."""
    tour_registry()
    tour_policies()
    tour_streaming()
    print("\napi tour complete.")


if __name__ == "__main__":
    main()
