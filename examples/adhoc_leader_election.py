"""Ad-hoc network bootstrap: leader election after deployment.

Scenario: devices with heterogeneous radio ranges are scattered over an
area (an undirected geometric radio network, paper Section 1.3) and must
self-organize: agree on a leader with no pre-assigned identities, no
topology knowledge, and no collision detection. This is Algorithm 3:
random candidacy at rate Theta(log n / n), random Theta(log n)-bit IDs,
one Compete run.

The example compares the paper's election against the classic
binary-search-over-IDs approach (O(log n) full broadcasts) and reports
empirical success rates over repeated deployments.

Run:  python examples/adhoc_leader_election.py
"""

from __future__ import annotations

import numpy as np

from repro import baselines, graphs
from repro.analysis import TextTable, success_rate
from repro.core import elect_leader
from repro.radio import RadioNetwork


def main() -> None:
    rng = np.random.default_rng(99)
    deployments = 10

    table = TextTable(
        [
            "deployment",
            "n",
            "D",
            "candidates",
            "elected",
            "ours rounds",
            "binsearch steps",
        ],
        title="Leader election on geometric radio networks",
    )

    outcomes = []
    for i in range(deployments):
        graph = graphs.random_geometric_radio(
            n=120, side=5.0, rng=rng, range_min=0.8, range_max=1.3
        )
        result = elect_leader(graph, rng)
        outcomes.append(result.elected)

        net = RadioNetwork(graph)
        binsearch = baselines.binary_search_election(net, rng)

        table.add_row(
            [
                i,
                graph.number_of_nodes(),
                graphs.diameter(graph),
                len(result.candidates),
                result.elected,
                result.total_rounds,
                binsearch.steps,
            ]
        )

    table.print()
    print(
        f"\nempirical success rate: {success_rate(outcomes):.0%} "
        f"(Theorem 8 guarantees success with high probability; failures "
        f"are detectable and fixed by re-running)"
    )


if __name__ == "__main__":
    main()
