"""The MIS lower bound, made tangible: Radio MIS plays wake-up.

The paper's Omega(log^2 n) MIS lower bound (Section 1.5.1) is a
reduction: k unknown nodes of a clique are active, and any correct MIS
algorithm — which must work when told the network size is n, because
the k nodes cannot distinguish n - k extra isolated nodes (footnote 3)
— has to produce a step where exactly one active node transmits.

This example plays that game three ways:

1. the Decay ladder (what Algorithm 7 actually uses): robust to any k;
2. a fixed-probability strategy: excellent at its tuned density,
   catastrophic away from it — the reason density sweeps (and hence a
   log n factor) are unavoidable;
3. the real Radio MIS marking dynamics on a k-clique, reporting where
   its first clean transmission lands relative to log^2 n.

Run:  python examples/lower_bound_reduction.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import TextTable
from repro.core import (
    decay_schedule,
    expected_steps,
    mis_as_wakeup_strategy,
    uniform_schedule,
)


def main() -> None:
    rng = np.random.default_rng(41)
    n = 256

    table = TextTable(
        ["active k", "decay ladder", "fixed p=1/16", "fixed p=1/k (oracle)"],
        title=f"Wake-up on a clique, n={n}: expected steps to first success",
    )
    for k in (2, 16, 64, 256):
        table.add_row(
            [
                k,
                expected_steps(k, decay_schedule(n), rng, trials=30),
                expected_steps(
                    k, uniform_schedule(1 / 16), rng, trials=30, max_steps=3000
                ),
                expected_steps(k, uniform_schedule(1 / k), rng, trials=30),
            ]
        )
    table.print()
    print(
        "\nThe oracle-tuned column is what knowing k buys (~e steps);\n"
        "the fixed mistuned column shows the collapse at k=256; the\n"
        "decay ladder pays ~log(n) to be correct for every k at once."
    )

    print("\nRadio MIS as the reduction's adversary target:")
    for k in (4, 32):
        result = mis_as_wakeup_strategy(n=n, k=k, rng=rng)
        print(
            f"  k={k:>3}: first clean transmission at step "
            f"{result.steps} (log^2 n = {math.log2(n)**2:.0f})"
        )
    print(
        "\nEvery correct MIS algorithm must clear this game — which is\n"
        "why no radio MIS algorithm can beat Omega(log^2 n), and why\n"
        "Theorem 14's O(log^3 n) is within one log factor of optimal."
    )


if __name__ == "__main__":
    main()
