"""Ablation A3 — fidelity cross-check: packet-level vs round-accounted.

The round-accounted Compete (used for the big sweeps) charges published
costs for the schedule machinery; the packet-level Compete simulates
every radio step but assumes shared phase randomness. Both paths must
agree on *behavioral* facts:

* both deliver on the same instances;
* both show step/round growth ~ diameter on growth-bounded graphs;
* the packet pipeline's ICP stage (the leading term analog) tracks the
  accounted propagation rounds within a modest constant factor.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.core import broadcast, broadcast_packet
from repro.radio import RadioNetwork

from conftest import save_table


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "D",
            "accounted prop rounds",
            "packet icp steps",
            "packet total steps",
            "both delivered",
        ],
        title=(
            "A3: accounted vs packet Compete (claim: both deliver; "
            "leading terms track each other across D)"
        ),
    )
    instances = {
        "grid 3x10": graphs.grid_udg(3, 10, rng),
        "grid 3x20": graphs.grid_udg(3, 20, rng),
        "grid 3x30": graphs.grid_udg(3, 30, rng),
        "chain(5,6)": graphs.clique_chain(5, 6),
        "udg(60)": graphs.random_udg(60, 4.0, rng),
    }
    for name, g in instances.items():
        d = graphs.diameter(g)
        accounted = broadcast(g, 0, rng)
        net = RadioNetwork(g)
        packet = broadcast_packet(net, 0, rng)
        table.add_row(
            [
                name,
                d,
                accounted.propagation_rounds,
                packet.stage_steps["icp"],
                packet.steps,
                accounted.delivered and packet.delivered,
            ]
        )
    return table


def test_a3_packet_vs_accounted(benchmark, results_dir):
    rng = np.random.default_rng(13001)
    g = graphs.grid_udg(3, 15, rng)

    benchmark.pedantic(
        lambda: broadcast_packet(
            RadioNetwork(g), 0, np.random.default_rng(5)
        ),
        rounds=3,
        iterations=1,
    )

    table = run_experiment(np.random.default_rng(13002))
    save_table(results_dir, "a3_packet_vs_accounted", table.render())
