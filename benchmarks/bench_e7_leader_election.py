"""E7 — Theorem 8: leader election in O(D log_D alpha + polylog n), whp.

Measures (a) empirical success rate across repeated runs (the whp
claim), (b) charged rounds versus the binary-search baseline's actual
radio steps, and (c) that election costs about one Compete (not the
O(log n) broadcasts of the classical reduction).
"""

from __future__ import annotations

import numpy as np

from repro import baselines, graphs
from repro.analysis import TextTable, success_rate
from repro.core import broadcast, elect_leader
from repro.radio import RadioNetwork

from conftest import save_table

RUNS = 8


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "n",
            "D",
            "success",
            "ours rounds",
            "1 broadcast",
            "binsearch steps",
        ],
        title=(
            "E7: leader election (claims: whp success; cost ~ one "
            "Compete, far below log(n) broadcasts)"
        ),
    )
    instances = {
        "udg(120)": graphs.random_udg(120, 5.0, rng),
        "gnp(100,.06)": graphs.connected_gnp(100, 0.06, rng),
        "chain(8,10)": graphs.clique_chain(8, 10),
        "grid 3x40": graphs.grid_udg(3, 40, rng),
    }
    for name, g in instances.items():
        outcomes, rounds = [], []
        for _ in range(RUNS):
            result = elect_leader(g, rng)
            outcomes.append(result.elected)
            if result.elected:
                rounds.append(result.total_rounds)
        one_broadcast = broadcast(g, 0, rng).total_rounds
        net = RadioNetwork(g)
        binsearch = baselines.binary_search_election(net, rng).steps
        table.add_row(
            [
                name,
                g.number_of_nodes(),
                graphs.diameter(g),
                success_rate(outcomes),
                float(np.mean(rounds)) if rounds else float("nan"),
                one_broadcast,
                binsearch,
            ]
        )
    return table


def test_e7_leader_election(benchmark, results_dir):
    rng = np.random.default_rng(7001)
    g = graphs.random_udg(100, 4.5, rng)

    benchmark.pedantic(
        lambda: elect_leader(g, np.random.default_rng(5)),
        rounds=3,
        iterations=1,
    )

    table = run_experiment(np.random.default_rng(7002))
    save_table(results_dir, "e7_leader_election", table.render())
