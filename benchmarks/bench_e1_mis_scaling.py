"""E1 — Theorem 14: Radio MIS runs in O(log^3 n) steps and is correct.

Sweeps n across graph families (clique, G(n,p), UDG, tree), runs the
full packet-level Radio MIS, and reports steps, steps / log^3 n (the
claim: bounded, roughly flat in n), and validity. The pytest-benchmark
timing covers one representative UDG run.
"""

from __future__ import annotations

import math

import numpy as np

from repro import graphs
from repro.analysis import TextTable, fit_power_law
from repro.core import MISConfig, compute_mis
from repro.graphs import is_maximal_independent_set
from repro.radio import RadioNetwork

from conftest import save_table

CONFIG = MISConfig(oracle_degree=False, eed_C=8)
SIZES = [32, 64, 128, 256]


def _families(rng):
    return {
        "clique": lambda n: graphs.clique(n),
        "gnp": lambda n: graphs.connected_gnp(n, min(0.5, 8.0 / n), rng),
        "udg": lambda n: graphs.random_udg(
            n, side=max(2.0, math.sqrt(n) / 2.5), rng=rng
        ),
        "tree": lambda n: graphs.random_tree(n, rng),
    }


def run_experiment(rng) -> TextTable:
    table = TextTable(
        ["family", "n", "steps", "steps/log^3(n)", "valid", "fit exponent"],
        title="E1: Radio MIS step scaling (claim: steps = O(log^3 n))",
    )
    for family, maker in _families(rng).items():
        xs, ys = [], []
        for n in SIZES:
            g = maker(n)
            net = RadioNetwork(g)
            result = compute_mis(net, rng, CONFIG)
            valid = result.all_removed and is_maximal_independent_set(
                g, result.mis
            )
            normalized = result.steps_used / math.log2(n) ** 3
            xs.append(math.log2(n) ** 3)
            ys.append(result.steps_used)
            table.add_row(
                [family, n, result.steps_used, normalized, valid, ""]
            )
        fit = fit_power_law(xs, ys)
        # Exponent ~1 against log^3 n means the claim's shape holds.
        table.add_row([family, "fit", "", "", "", fit.exponent])
    return table


def test_e1_mis_scaling(benchmark, results_dir):
    rng = np.random.default_rng(1001)
    g = graphs.random_udg(128, side=4.5, rng=rng)

    def one_run():
        net = RadioNetwork(g)
        return compute_mis(net, np.random.default_rng(7), CONFIG)

    result = benchmark.pedantic(one_run, rounds=3, iterations=1)
    assert result.all_removed

    table = run_experiment(np.random.default_rng(1002))
    save_table(results_dir, "e1_mis_scaling", table.render())
