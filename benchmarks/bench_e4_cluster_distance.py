"""E4 — Theorem 2 vs [7] Theorem 2.2: expected distance to cluster center.

The paper's core technical claim: with MIS centers, for >= 0.77 of the
j window, E[distance from v to its Partition(2^-j, MIS) center] is
O(log_D(alpha) / beta); with all-nodes centers ([7]) the guarantee is
the weaker O(log_D(n) / beta) at probability 0.55.

This experiment measures, per j and per center mode, the empirical mean
distance over repeated Partition draws, normalized by the corresponding
bound's scale (log_D(alpha)/beta for MIS centers, log_D(n)/beta for
all), on a growth-bounded UDG and a general G(n,p). Shapes to check:
normalized values bounded by a constant for most j, and the MIS-mode
normalizer (smaller by log(n)/log(alpha)) sufficing where the paper
says it does.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.core import j_range, partition
from repro.graphs import greedy_independent_set, log_base_d
from repro.radio import RadioNetwork

from conftest import save_table

DRAWS = 30


def _mean_distance(g, beta, centers, rng, v=0) -> float:
    values = [
        float(partition(g, beta, centers, rng).distance_to_center[v])
        for _ in range(DRAWS)
    ]
    return float(np.mean(values))


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "j",
            "beta",
            "mode",
            "mean dist",
            "normalizer",
            "normalized",
        ],
        title=(
            "E4: node-to-center distance under Partition(beta, centers) "
            "(claim: normalized values O(1) for most j; MIS mode uses the "
            "smaller log_D(alpha) normalizer)"
        ),
    )
    instances = {
        "grid-udg 12x12": graphs.grid_udg(12, 12, rng),
        "gnp(120, 0.05)": graphs.connected_gnp(120, 0.05, rng),
    }
    for name, g in instances.items():
        n = g.number_of_nodes()
        d = graphs.diameter(g)
        alpha = graphs.exact_independence_number(g)
        mis = sorted(greedy_independent_set(g, rng, strategy="random"))
        for j in j_range(d):
            beta = 2.0**-j
            for mode, centers, param in (
                ("mis", mis, alpha),
                ("all", list(g.nodes), n),
            ):
                mean_dist = _mean_distance(g, beta, centers, rng)
                normalizer = log_base_d(param, d) / beta
                table.add_row(
                    [
                        name,
                        j,
                        beta,
                        mode,
                        mean_dist,
                        normalizer,
                        mean_dist / normalizer,
                    ]
                )
    return table


def test_e4_cluster_distance(benchmark, results_dir):
    rng = np.random.default_rng(4001)
    g = graphs.grid_udg(10, 10, rng)
    mis = sorted(greedy_independent_set(g))

    benchmark.pedantic(
        lambda: partition(g, 0.25, mis, np.random.default_rng(5)),
        rounds=5,
        iterations=1,
    )

    table = run_experiment(np.random.default_rng(4002))
    save_table(results_dir, "e4_cluster_distance", table.render())
