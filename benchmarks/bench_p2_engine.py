"""P2 — unified windowed protocol engine: before/after timings (PR 2).

PR 1 batched the *oblivious* primitives (Decay blocks, round-robin
rotations). PR 2 migrated every step-at-a-time protocol onto the
:mod:`repro.engine` scheduler layer; this benchmark measures the two
protocols the ROADMAP named as still step-wise — Radio MIS and
EstimateEffectiveDegree — against their retained ``*_reference``
step-wise twins, which execute the identical schedule (bit-identical
seeded results, pinned by ``tests/test_engine_windowed.py``):

* **Radio MIS** at ``n >= 2000`` on a dense UDG: every round's two
  Decay blocks and its EstimateEffectiveDegree block run as oblivious
  windows. Acceptance floor: **5x**.

* **EstimateEffectiveDegree** at ``n >= 2000`` with mid-run desire
  levels (the ladder mixture Radio MIS produces after a few halvings):
  the whole ``O(log^2 n)``-step block is oblivious. Acceptance floor:
  **5x**.

* **BGI broadcast** (recorded, no floor): its oblivious windows are one
  sweep wide — ``ceil(log2 n)`` steps between informed-set decision
  points — so the batched path saves only the per-step dispatch, a
  structural limit (~1-3x at these scales), not an engine deficiency.

Also records the E1/E6 trial slices through
:func:`repro.analysis.experiments.run_trials_parallel` (serial vs
process-pool wall-clock, bit-identical statistics), per the ROADMAP's
"keep the trajectory measured" item. Results persist to
``BENCH_PR2.json``. Run directly::

    PYTHONPATH=src python benchmarks/bench_p2_engine.py

or through ``benchmarks/run_perf_smoke.py`` (tier-1 suite + P1 + this).
"""

from __future__ import annotations

import functools
import json
import pathlib
import platform
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR2.json"

#: Acceptance floors from the PR 2 issue.
MIS_FLOOR = 5.0
EED_FLOOR = 5.0


def _udg(n: int, side: float, seed: int):
    from repro import graphs

    return graphs.random_udg(n, side, np.random.default_rng(seed))


def bench_mis(n: int = 2000, seed: int = 101) -> dict:
    """Radio MIS: windowed engine vs. step-wise reference.

    Dense UDG (average degree ~50) so the per-step delivery cost is
    realistic for the protocol's intended regime; ``record_golden`` off
    (pure protocol, no oracle instrumentation) and a moderate ``C``.
    """
    from repro.core import MISConfig, compute_mis, compute_mis_reference
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 31.0) ** 0.5, seed)  # side ~= 8 at n = 2000
    config = MISConfig(eed_C=8, record_golden=False)

    net_ref = RadioNetwork(g, trace=CheapTrace())
    t0 = time.perf_counter()
    ref = compute_mis_reference(net_ref, np.random.default_rng(seed + 1), config)
    reference_s = time.perf_counter() - t0

    net_win = RadioNetwork(g, trace=CheapTrace())
    t0 = time.perf_counter()
    win = compute_mis(net_win, np.random.default_rng(seed + 1), config)
    windowed_s = time.perf_counter() - t0

    assert win.mis == ref.mis and win.steps_used == ref.steps_used
    return {
        "workload": "Radio MIS (Algorithm 7), windowed vs step-wise",
        "n": n,
        "edges": g.number_of_edges(),
        "steps": win.steps_used,
        "rounds": win.rounds_used,
        "reference_s": reference_s,
        "windowed_s": windowed_s,
        "speedup": reference_s / windowed_s,
        "floor": MIS_FLOOR,
    }


def bench_effective_degree(n: int = 2000, seed: int = 303) -> dict:
    """EstimateEffectiveDegree: windowed engine vs. step-wise reference.

    Dense UDG with mid-run desire levels ``0.25 * 2^-j`` (j uniform in
    0..5) over a 70% active set — the regime Radio MIS actually runs
    the block in after a few rounds of halvings.
    """
    from repro.core import (
        estimate_effective_degree,
        estimate_effective_degree_reference,
    )
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 80.0) ** 0.5, seed)  # side ~= 5 at n = 2000
    setup = np.random.default_rng(seed + 1)
    p = 0.25 * 2.0 ** -setup.integers(0, 6, size=n)
    active = setup.random(n) < 0.7

    # Best-of-2 on BOTH paths: the gated ratio compares the same
    # statistic on each side, so host noise cannot bias it.
    reference_s = float("inf")
    for _ in range(2):
        net_ref = RadioNetwork(g, trace=CheapTrace())
        t0 = time.perf_counter()
        ref = estimate_effective_degree_reference(
            net_ref, p, active, np.random.default_rng(seed + 2), C=24
        )
        reference_s = min(reference_s, time.perf_counter() - t0)

    windowed_s = float("inf")
    for _ in range(2):
        net_win = RadioNetwork(g, trace=CheapTrace())
        t0 = time.perf_counter()
        win = estimate_effective_degree(
            net_win, p, active, np.random.default_rng(seed + 2), C=24
        )
        windowed_s = min(windowed_s, time.perf_counter() - t0)

    assert (win.counts == ref.counts).all()
    return {
        "workload": "EstimateEffectiveDegree (Algorithm 6), windowed vs step-wise",
        "n": n,
        "edges": g.number_of_edges(),
        "steps": net_ref.steps_elapsed,
        "reference_s": reference_s,
        "windowed_s": windowed_s,
        "speedup": reference_s / windowed_s,
        "floor": EED_FLOOR,
    }


def bench_bgi(n: int = 2000, seed: int = 202, repeats: int = 3) -> dict:
    """BGI broadcast: windowed vs. step-wise (recorded, no floor).

    One oblivious window per sweep is all the structure BGI offers —
    the informed set is a decision point every ``ceil(log2 n)`` steps —
    so the expected gain is the per-step dispatch overhead only.
    """
    from repro.baselines import bgi_broadcast, bgi_broadcast_reference
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 10.0) ** 0.5, seed)  # side ~= 14 at n = 2000

    t0 = time.perf_counter()
    for r in range(repeats):
        net = RadioNetwork(g, trace=CheapTrace())
        ref = bgi_broadcast_reference(net, 0, np.random.default_rng(seed + r))
    reference_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for r in range(repeats):
        net = RadioNetwork(g, trace=CheapTrace())
        win = bgi_broadcast(net, 0, np.random.default_rng(seed + r))
    windowed_s = time.perf_counter() - t0

    assert win == ref
    return {
        "workload": "BGI broadcast, windowed vs step-wise (no floor: "
        "sweep-wide windows are a structural limit)",
        "n": n,
        "edges": g.number_of_edges(),
        "repeats": repeats,
        "steps_last": win.steps,
        "reference_s": reference_s,
        "windowed_s": windowed_s,
        "speedup": reference_s / windowed_s,
    }


# ---------------------------------------------------------------------------
# E1/E6 slices through the parallel trial runner (module-level and
# partial-able so the process pool can pickle them).
# ---------------------------------------------------------------------------
def _e1_mis_steps(n: int, rng: np.random.Generator) -> float:
    """One E1 trial: windowed Radio MIS steps on a fresh UDG."""
    from repro import graphs
    from repro.core import MISConfig, compute_mis
    from repro.radio import CheapTrace, RadioNetwork

    g = graphs.random_udg(n, (n / 4.0) ** 0.5, rng)
    net = RadioNetwork(g, trace=CheapTrace())
    result = compute_mis(
        net, rng, MISConfig(eed_C=6, record_golden=False)
    )
    return float(result.steps_used)


def _e6_broadcast_rounds(n: int, rng: np.random.Generator) -> float:
    """One E6 trial: engine-backed round-accounted broadcast rounds."""
    from repro import graphs
    from repro.core import broadcast

    g = graphs.random_udg(n, (n / 4.0) ** 0.5, rng)
    return float(broadcast(g, 0, rng).total_rounds)


def bench_trial_runner(n: int = 600, trials: int = 6, seed: int = 11) -> dict:
    """E1/E6 slices: serial vs process-pool wall-clock, same numbers.

    The parallel speedup depends on the host's core count, so it is
    recorded, not gated; what *is* asserted is bit-identical statistics
    between the serial and parallel runners.
    """
    from repro.analysis.experiments import run_trials, run_trials_parallel

    record: dict = {"n": n, "trials": trials}
    for name, measure in (
        ("e1_mis_steps", functools.partial(_e1_mis_steps, n)),
        ("e6_broadcast_rounds", functools.partial(_e6_broadcast_rounds, n)),
    ):
        t0 = time.perf_counter()
        serial = run_trials(measure, trials, seed)
        serial_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = run_trials_parallel(measure, trials, seed)
        parallel_s = time.perf_counter() - t0
        assert serial == parallel, f"{name}: parallel stats diverged"
        record[name] = {
            "mean": serial.mean,
            "std": serial.std,
            "serial_s": serial_s,
            "parallel_s": parallel_s,
            "parallel_speedup": serial_s / parallel_s,
        }
    return record


def peak_memory(n: int = 2000, seed: int = 101) -> int:
    """Tracemalloc peak of the windowed Radio MIS workload.

    A separate traced pass: tracing taxes small allocations heavily
    enough to distort the floor-gated timing ratios, so the timed
    benches run untraced and this re-execution records the memory side
    of the trajectory.
    """
    from repro.analysis.experiments import measure_peak
    from repro.core import MISConfig, compute_mis
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 31.0) ** 0.5, seed)
    net = RadioNetwork(g, trace=CheapTrace())
    config = MISConfig(eed_C=8, record_golden=False)
    _, peak = measure_peak(
        lambda: compute_mis(net, np.random.default_rng(seed + 1), config)
    )
    return int(peak)


def run_bench(n: int = 2000) -> dict:
    """Run the PR 2 benchmarks and assemble the persistable record.

    ``peak_mem_bytes`` (tracemalloc over the windowed MIS workload,
    numpy buffers included) rides alongside the wall times so the
    ``BENCH_*.json`` trajectory tracks memory as well as speed.
    """
    mis = bench_mis(n=n)
    eed = bench_effective_degree(n=n)
    bgi = bench_bgi(n=n)
    trials = bench_trial_runner()
    return {
        "bench": "p2_engine",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "peak_mem_bytes": peak_memory(n=n),
        "radio_mis": mis,
        "effective_degree": eed,
        "bgi_broadcast": bgi,
        "trial_runner": trials,
        "passes_floors": bool(
            mis["speedup"] >= mis["floor"]
            and eed["speedup"] >= eed["floor"]
        ),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main() -> int:
    """Run, print, persist; exit nonzero if a speedup floor is missed."""
    results = run_bench()
    for key in ("radio_mis", "effective_degree", "bgi_broadcast"):
        row = results[key]
        floor = row.get("floor")
        floor_txt = f" (floor {floor}x)" if floor else " (no floor)"
        print(
            f"{key:18s} n={row['n']}: {row['reference_s']:.2f}s -> "
            f"{row['windowed_s']:.2f}s = {row['speedup']:.1f}x{floor_txt}"
        )
    for name in ("e1_mis_steps", "e6_broadcast_rounds"):
        row = results["trial_runner"][name]
        print(
            f"{name:18s} serial {row['serial_s']:.2f}s -> parallel "
            f"{row['parallel_s']:.2f}s = {row['parallel_speedup']:.1f}x"
        )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
