"""E5 — Lemma 5: at most 0.02 log2(D) values of j are 'bad'.

A j is bad when the MIS population explodes just outside the radius
2^j log(b) around a node (the condition of Lemma 4 fails). Lemma 5
bounds the count of bad j via the global budget alpha. This experiment
computes, for sampled nodes across graph families, the exact bad-j count
from the m_i histograms and compares it with Lemma 5's limit, plus the
Theorem 2 good fraction (claim: >= 0.77 of the window).
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.core import bad_j_report, center_distance_histogram, j_range
from repro.graphs import greedy_independent_set

from conftest import save_table


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "node",
            "window size",
            "bad j",
            "lemma5 limit",
            "good fraction",
        ],
        title=(
            "E5: bad-j counts per node (claim: <= 0.02 log2 D bad j; "
            ">= 0.77 good fraction)"
        ),
    )
    instances = {
        "grid-udg 12x12": graphs.grid_udg(12, 12, rng),
        "udg(150)": graphs.random_udg(150, 7.0, rng),
        "gnp(100, .06)": graphs.connected_gnp(100, 0.06, rng),
        "clique-chain(8,8)": graphs.clique_chain(8, 8),
        "tree(120)": graphs.random_tree(120, rng),
    }
    for name, g in instances.items():
        d = graphs.diameter(g)
        alpha = graphs.exact_independence_number(g)
        mis = sorted(greedy_independent_set(g, rng, strategy="random"))
        window = j_range(d)
        nodes = list(g.nodes)
        sample = [nodes[int(i)] for i in rng.integers(len(nodes), size=4)]
        for v in sample:
            m = center_distance_histogram(g, v, mis)
            report = bad_j_report(m, window, alpha, d)
            table.add_row(
                [
                    name,
                    v,
                    len(window),
                    len(report.bad),
                    report.limit,
                    report.good_fraction,
                ]
            )
    return table


def test_e5_bad_j(benchmark, results_dir):
    rng = np.random.default_rng(5001)
    g = graphs.grid_udg(12, 12, rng)
    mis = sorted(greedy_independent_set(g))
    d = graphs.diameter(g)
    alpha = graphs.exact_independence_number(g)

    def one_report():
        m = center_distance_histogram(g, 0, mis)
        return bad_j_report(m, j_range(d), alpha, d)

    benchmark.pedantic(one_report, rounds=5, iterations=1)

    table = run_experiment(np.random.default_rng(5002))
    save_table(results_dir, "e5_bad_j", table.render())
