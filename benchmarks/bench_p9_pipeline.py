"""P9 — the fused coin+fault+delivery pipeline and the first
end-to-end n = 10^6 Radio MIS from the corpus store.

PR 9 collapsed the streamed chunk loop's three passes (draw coins,
apply fault transforms, deliver) into one fused per-chunk pipeline
pass — a numba ``@njit`` kernel where available, a blocked pure-NumPy
leg everywhere — registered as the fourth delivery tier
(``delivery="pipeline"``). Three claims to pin, all on end-to-end
Radio MIS under a declared streaming budget:

* **Bit-identity first.** At a small n, the fused pass — auto-routed
  and force-routed, faulted and fault-free — reproduces the unfused
  (PR 7) run exactly: MIS result, steps, per-phase trace totals,
  realized fault counters, and the final rng state. A timing row is
  meaningless unless this passes, so it gates.
* **Fusion alone pays.** The pure-NumPy fused pipeline (numba probe
  forced off on both sides, so CI machines with numba measure the
  same thing this container does) beats the PR 7 restricted
  pure-NumPy path by at least **1.5x** wall-clock at n = 10^5.
* **The compiled pipeline pays on top.** With numba installed, the
  forced ``delivery="pipeline"`` leg beats the same baseline by at
  least **3x**. Without numba the mode *refuses by name* (recorded
  here; the CI optional-deps matrix runs the gated form).

The cap: one end-to-end n = 10^6 MIS, generated into the corpus
store, mmap-loaded back, and streamed under ``E2E_MEM_BUDGET`` with
the tracemalloc peak recorded and gated.

Rows persist to ``BENCH_PR9.json``. Run directly::

    PYTHONPATH=src python benchmarks/bench_p9_pipeline.py --n 100000

or through ``benchmarks/run_perf_smoke.py`` (``--skip-p9`` /
``--p9-n`` to opt down; CI uses ``--p9-n 30000 --skip-e2e``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import platform
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR9.json"

#: Streaming memory budget the timed n = 10^5 legs run under (matches
#: the PR 7 envelope so the speedup is measured against its baseline).
MEM_BUDGET = "256M"

#: Streaming budget the n = 10^6 end-to-end leg declares.
E2E_MEM_BUDGET = "512M"

#: Ceiling on the tracemalloc peak of the n = 10^6 leg: the streaming
#: budget plus the resident graph structures (the network's CSR
#: adjacency and delivery matrix at n = 10^6, ~9 * 10^6 edges).
E2E_PEAK_CEILING_BYTES = 3 * 2**30

#: Pure-NumPy fused pipeline over the PR 7 restricted-numpy path.
PIPELINE_FLOOR = 1.5

#: Forced ``delivery="pipeline"`` (numba kernel) over the same
#: baseline (gated only where numba is installed).
NUMBA_FLOOR = 3.0


@contextlib.contextmanager
def _numpy_only():
    """Force the numba probe off so a leg measures pure NumPy.

    Without this, a CI machine with numba would route both the
    baseline and the fused-numpy leg through compiled kernels and the
    two legs would no longer measure what this container measures.
    """
    from repro.engine import kernels

    prior = kernels._probe_cache.get("numba")
    kernels._probe_cache["numba"] = False
    try:
        yield
    finally:
        if prior is None:
            kernels._probe_cache.pop("numba", None)
        else:
            kernels._probe_cache["numba"] = prior


def _udg(n: int, seed: int):
    """The benchmark UDG family (matches bench_p3..p8 fixtures)."""
    from repro import graphs

    side = float(np.sqrt(n * np.pi / 9.0))
    return graphs.random_udg(
        n, side, np.random.default_rng(seed), connected=False
    )


def _policy(budget: str = MEM_BUDGET, **kwargs):
    import repro.api as api

    return api.ExecutionPolicy(
        mem_budget=api.parse_mem_budget(budget),
        trace="cheap",
        **kwargs,
    )


def _faults(n: int, seed: int):
    """A schedule exercising every fused fault transform column-wise:
    crashes, late joins, sleep windows, jams, and lossy sends."""
    from repro.faults.schedule import FaultSchedule, Jam

    rng = np.random.default_rng(seed)
    nodes = rng.choice(n, size=max(8, n // 50), replace=False)
    third = len(nodes) // 3
    return FaultSchedule(
        crashes=tuple(
            (int(v), int(rng.integers(5, 60))) for v in nodes[:third]
        ),
        joins=tuple(
            (int(v), int(rng.integers(1, 30)))
            for v in nodes[third : 2 * third]
        ),
        sleeps=tuple(
            (int(v), 10, 25) for v in nodes[2 * third :]
        ),
        jams=(Jam(start=15, stop=40, nodes=None),),
        tx_prob=tuple((int(v), 0.9) for v in nodes[: third // 2]),
        seed=seed,
        horizon=4096,
    )


def _mis_once(g, seed: int, policy, faults=None, fused=True):
    from repro.core import MISConfig, compute_mis
    from repro.engine.kernels import pipeline_disabled
    from repro.radio import RadioNetwork

    net = RadioNetwork(g, faults=faults)
    rng = np.random.default_rng(seed)
    ctx = contextlib.nullcontext() if fused else pipeline_disabled()
    t0 = time.perf_counter()
    with ctx:
        result = compute_mis(net, rng, MISConfig(eed_C=2), policy=policy)
    wall = time.perf_counter() - t0
    return result, net, rng, wall


def check_bit_identity(n: int = 1500, seed: int = 91) -> dict:
    """The fused pass equals the unfused run, exactly — faulted too."""
    from repro.engine.kernels import probe_numba

    g = _udg(n, seed)
    faults = _faults(n, seed + 7)
    legs = {
        "unfused": dict(fused=False),
        "fused-auto": dict(fused=True),
        "unfused-faulted": dict(fused=False, faults=faults),
        "fused-faulted": dict(fused=True, faults=faults),
    }
    if probe_numba():  # pragma: no cover - CI optional-deps leg
        legs["pipeline-forced"] = dict(
            fused=True, policy=_policy(delivery="pipeline")
        )
    runs = {}
    for name, spec in legs.items():
        policy = spec.pop("policy", None) or _policy()
        runs[name] = _mis_once(g, seed + 1, policy, **spec)

    checked = []
    for ref_name, name in [
        ("unfused", "fused-auto"),
        ("unfused-faulted", "fused-faulted"),
    ] + (
        [("unfused", "pipeline-forced")] if "pipeline-forced" in runs else []
    ):
        ref_res, ref_net, ref_rng, _ = runs[ref_name]
        res, net, rng, _ = runs[name]
        assert res.mis == ref_res.mis, name
        assert res.steps_used == ref_res.steps_used, name
        assert res.history == ref_res.history, name
        assert net.steps_elapsed == ref_net.steps_elapsed, name
        assert net.trace.total_steps == ref_net.trace.total_steps, name
        assert (
            net.trace.total_transmissions
            == ref_net.trace.total_transmissions
        ), name
        assert (
            net.trace.total_receptions == ref_net.trace.total_receptions
        ), name
        if net._fault_state is not None:
            assert (
                dict(net._fault_state.realized)
                == dict(ref_net._fault_state.realized)
            ), name
        assert (
            rng.bit_generator.state == ref_rng.bit_generator.state
        ), name
        checked.append(name)
    base = runs["unfused"][0]
    return {
        "n": n,
        "edges": g.number_of_edges(),
        "mis_size": len(base.mis),
        "steps": base.steps_used,
        "legs": checked,
        "identical": True,
    }


def bench_pipeline_legs(n: int, seed: int = 92) -> dict:
    """The timed legs: unfused PR 7 path, fused numpy, fused numba."""
    from repro.engine.kernels import probe_numba, require_delivery_mode
    from repro.radio.errors import ProtocolError

    g = _udg(n, seed)
    edges = g.number_of_edges()

    with _numpy_only():
        base_res, base_net, base_rng, base_s = _mis_once(
            g, seed + 1, _policy(), fused=False
        )
        fused_res, fused_net, fused_rng, fused_s = _mis_once(
            g, seed + 1, _policy(), fused=True
        )
    # The identity trio again, at the timed scale: a speedup row only
    # counts if this exact pair of runs agreed bit for bit.
    assert fused_res.mis == base_res.mis
    assert fused_res.steps_used == base_res.steps_used
    assert (
        fused_rng.bit_generator.state == base_rng.bit_generator.state
    )

    have_numba = probe_numba()
    refusal = None
    if have_numba:  # pragma: no cover - CI optional-deps leg
        forced = _policy(delivery="pipeline")
        _mis_once(g, seed + 1, forced)  # untimed JIT warmup
        numba_res, numba_net, numba_rng, numba_s = _mis_once(
            g, seed + 1, forced
        )
        assert numba_res.mis == base_res.mis
        assert (
            numba_rng.bit_generator.state == base_rng.bit_generator.state
        )
        numba_use = dict(numba_net.kernel_use)
    else:
        try:
            require_delivery_mode("pipeline")
        except ProtocolError as exc:
            refusal = str(exc)
        numba_s = None
        numba_use = None

    return {
        "workload": "end-to-end Radio MIS, streamed under "
        f"{MEM_BUDGET} (eed_C=2)",
        "n": n,
        "edges": edges,
        "mis_size": len(base_res.mis),
        "steps": base_res.steps_used,
        "mem_budget": MEM_BUDGET,
        "unfused_s": base_s,
        "fused_numpy_s": fused_s,
        "pipeline_speedup": base_s / fused_s,
        "pipeline_floor": PIPELINE_FLOOR,
        "numba_available": have_numba,
        "pipeline_numba_s": numba_s,
        "numba_speedup": (base_s / numba_s) if numba_s else None,
        "numba_floor": NUMBA_FLOOR if have_numba else None,
        "forced_refusal": refusal,
        "unfused_timing": dict(base_net.phase_timing),
        "fused_timing": dict(fused_net.phase_timing),
        "unfused_kernel_use": dict(base_net.kernel_use),
        "fused_kernel_use": dict(fused_net.kernel_use),
        "numba_kernel_use": numba_use,
        "residual_stats": dict(fused_net.residual_stats),
    }


def bench_e2e_million(n: int, seed: int = 93) -> dict:
    """The cap: n = 10^6 MIS from the corpus store, budget declared.

    The graph is generated with the PR 8 cell-grid CSR generator,
    persisted to a store entry, mmap-loaded back, and streamed through
    the fused pipeline under ``E2E_MEM_BUDGET`` with the tracemalloc
    peak recorded — the first end-to-end million-node run the repo
    has produced.
    """
    import repro.api as api
    from repro import corpus

    side = float(np.sqrt(n * np.pi / 9.0))
    t0 = time.perf_counter()
    g = corpus.random_udg_csr(
        n, side, np.random.default_rng(seed), connected=False
    )
    generate_s = time.perf_counter() - t0

    with tempfile.TemporaryDirectory() as tmp:
        entry = pathlib.Path(tmp) / "entry"
        digest = corpus.save_graph(g, entry)
        del g
        t0 = time.perf_counter()
        loaded = corpus.load_graph(entry)
        load_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        report = api.run(
            "mis",
            corpus=loaded,
            rng=np.random.default_rng(seed + 1),
            policy=_policy(budget=E2E_MEM_BUDGET),
            measure_memory=True,
        )
        mis_s = time.perf_counter() - t0

    return {
        "workload": "corpus-store n=10^6 Radio MIS, streamed under "
        f"{E2E_MEM_BUDGET} (eed_C=2)",
        "n": n,
        "edges": loaded.number_of_edges(),
        "digest": digest,
        "generate_s": generate_s,
        "mmap_load_s": load_s,
        "mis_s": mis_s,
        "mis_size": report.result.size,
        "steps": report.steps,
        "mem_budget": E2E_MEM_BUDGET,
        "peak_mem_bytes": report.peak_mem_bytes,
        "peak_ceiling_bytes": E2E_PEAK_CEILING_BYTES,
        "timing": dict(report.provenance["timing"]),
        "kernel_use": dict(report.provenance["delivery"]["kernel_use"]),
        "residual": dict(report.provenance["residual"]),
    }


def run_bench(
    n: int = 100000,
    identity_n: int = 1500,
    e2e_n: int = 1000000,
    skip_e2e: bool = False,
) -> dict:
    """Run the PR 9 benchmarks and assemble the persistable record."""
    identity = check_bit_identity(n=identity_n)
    legs = bench_pipeline_legs(n=n)
    passes = legs["pipeline_speedup"] >= legs["pipeline_floor"]
    if legs["numba_floor"] is not None:  # pragma: no cover - CI leg
        passes = passes and legs["numba_speedup"] >= legs["numba_floor"]
    else:
        passes = passes and "numba" in (legs["forced_refusal"] or "")
    e2e = None
    if not skip_e2e:
        e2e = bench_e2e_million(n=e2e_n)
        passes = passes and (
            e2e["peak_mem_bytes"] <= e2e["peak_ceiling_bytes"]
        )
    return {
        "bench": "p9_pipeline",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "bit_identity": identity,
        "pipeline_legs": legs,
        "e2e_million": e2e,
        "passes_floors": bool(passes and identity["identical"]),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Run, print, persist; exit nonzero if a floor breaks."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=100000,
        help="timed pipeline scale (acceptance assumes 100000; CI "
        "uses 30000)",
    )
    parser.add_argument(
        "--identity-n", type=int, default=1500,
        help="bit-identity check scale (default 1500)",
    )
    parser.add_argument(
        "--e2e-n", type=int, default=1000000,
        help="end-to-end corpus-store scale (default 1000000)",
    )
    parser.add_argument(
        "--skip-e2e", action="store_true",
        help="skip the n=10^6 end-to-end leg (CI does; acceptance "
        "runs it)",
    )
    args = parser.parse_args(argv)
    results = run_bench(
        n=args.n,
        identity_n=args.identity_n,
        e2e_n=args.e2e_n,
        skip_e2e=args.skip_e2e,
    )
    ident = results["bit_identity"]
    legs = results["pipeline_legs"]
    print(
        f"bit-identity n={ident['n']}: legs {ident['legs']} identical"
    )
    gate = (
        f", pipeline-numba {legs['pipeline_numba_s']:.2f}s = "
        f"{legs['numba_speedup']:.2f}x (floor {legs['numba_floor']}x)"
        if legs["numba_floor"] is not None
        else " (no numba: forced pipeline refuses by name)"
    )
    print(
        f"MIS n={legs['n']}: unfused {legs['unfused_s']:.2f}s, "
        f"fused numpy {legs['fused_numpy_s']:.2f}s "
        f"= {legs['pipeline_speedup']:.2f}x "
        f"(floor {legs['pipeline_floor']}x){gate}"
    )
    e2e = results["e2e_million"]
    if e2e is not None:
        print(
            f"e2e n={e2e['n']}: generate {e2e['generate_s']:.1f}s, "
            f"load {e2e['mmap_load_s'] * 1000:.0f}ms, "
            f"MIS {e2e['mis_s']:.1f}s "
            f"({e2e['steps']} steps, |MIS|={e2e['mis_size']}), "
            f"peak {e2e['peak_mem_bytes'] / 2**30:.2f} GiB "
            f"(ceiling {e2e['peak_ceiling_bytes'] / 2**30:.1f} GiB)"
        )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
