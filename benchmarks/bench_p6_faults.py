"""P6 — the fault layer: zero-cost when disabled, graceful when not.

PR 6 threaded crash/sleep/join/jam schedules and per-node capability
vectors (``repro.faults``) through every delivery entry point. Two
claims to pin:

* **Disabled faults are free.** The fault hooks sit between plan and
  commit inside every delivery, so a fault-free run must not pay for
  them: a run with an *empty* :class:`~repro.api.FaultSchedule`
  installed (the hooks' fast path — bit-identical by construction,
  pinned by the test suites) must sit within **5%** wall-clock of the
  identical run with no schedule at all. Measured on the windowed MIS
  pipeline — the deepest consumer of the delivery layer — with the
  interleaved adaptive best-of sampling ``BENCH_PR5.json`` introduced.

* **Enabled faults degrade, not detonate.** Degradation curves for the
  robustness protocol variants, one row per fault-rate knob setting:

  - ``mis_restart`` under growing churn + crashes: standing-MIS
    conflict edges, dominated fraction, re-admitted nodes;
  - ``leader_uptime`` under growing churn: surviving candidate count,
    election success, radio steps;
  - BGI broadcast under growing jam rates: informed fraction within a
    fixed best-effort sweep budget.

Rows persist to ``BENCH_PR6.json``; the overhead gate is the exit
status. Run directly::

    PYTHONPATH=src python benchmarks/bench_p6_faults.py --n 1200

or through ``benchmarks/run_perf_smoke.py`` (``--skip-p6`` /
``--p6-n`` to opt down).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR6.json"

#: Acceptance ceiling from the PR 6 issue: a run with an empty (or no)
#: schedule may cost at most this factor over the pre-fault-layer path.
OVERHEAD_CEILING = 1.05

#: Adaptive sampling cap (same rationale as bench_p5_api: the gated
#: statistic is a best-of floor, so convergent early stopping cannot
#: mask a real regression — a genuine one exhausts the cap instead).
MAX_REPEATS = 24

#: The degradation sweeps' fixed fault-environment seed: one integer
#: reproduces every schedule in the artifact.
FAULT_SEED = 60


def _interleaved_best(
    run_plain, run_empty, min_repeats: int
) -> tuple[float, float, int]:
    """Best-of-k wall times, interleaved and adaptively extended."""
    plain_best = empty_best = float("inf")
    samples = 0
    while samples < min_repeats or (
        empty_best / plain_best > OVERHEAD_CEILING
        and samples < MAX_REPEATS
    ):
        t0 = time.perf_counter()
        run_plain()
        plain_best = min(plain_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_empty()
        empty_best = min(empty_best, time.perf_counter() - t0)
        samples += 1
    return plain_best, empty_best, samples


def _udg(n: int, seed: int):
    """The benchmark UDG family (matches bench_p3/p4/p5 fixtures)."""
    from repro import graphs

    side = float(np.sqrt(n * np.pi / 9.0))
    return graphs.random_udg(
        n, side, np.random.default_rng(seed), connected=False
    )


def bench_disabled_overhead(
    n: int = 1200, seed: int = 606, repeats: int = 5
) -> dict:
    """Windowed MIS with an empty FaultSchedule vs none (bit-identical)."""
    import repro.api as api

    g = _udg(n, seed)
    policy_plain = api.ExecutionPolicy(trace="cheap")
    policy_empty = api.ExecutionPolicy(
        trace="cheap", faults=api.FaultSchedule()
    )

    def run_plain():
        return api.run("mis", g, seed=seed + 1, policy=policy_plain)

    def run_empty():
        return api.run("mis", g, seed=seed + 1, policy=policy_empty)

    # One untimed warmup each (context caches, bit-identity check),
    # then interleaved adaptive best-of sampling.
    plain, empty = run_plain(), run_empty()
    assert plain.result.mis == empty.result.mis
    assert plain.steps == empty.steps
    plain_best, empty_best, samples = _interleaved_best(
        run_plain, run_empty, repeats
    )
    row = plain.row()
    row.update(
        {
            "workload": "windowed MIS, empty FaultSchedule vs none",
            "n": n,
            "edges": g.number_of_edges(),
            "mis_size": len(plain.result.mis),
            "mis_steps": plain.steps,
            "plain_best_s": plain_best,
            "empty_faults_best_s": empty_best,
            "empty_over_plain": empty_best / plain_best,
            "samples": samples,
            "ceiling": OVERHEAD_CEILING,
        }
    )
    return row


def bench_mis_restart_degradation(
    n: int = 400, seed: int = 707, horizon: int = 20000
) -> list[dict]:
    """Restartable MIS vs growing churn + crash rates, one row each."""
    import repro.api as api

    g = _udg(n, seed)
    rows = []
    for rate in (0.0, 0.1, 0.2, 0.4):
        schedule = api.FaultSchedule.sample(
            n, horizon, seed=FAULT_SEED, crash_rate=rate / 2.0, churn=rate
        )
        report = api.run(
            "mis_restart", g, seed=seed + 1,
            policy=api.ExecutionPolicy(faults=schedule),
        )
        result = report.result
        row = report.row()
        row.update(
            {
                "churn": rate,
                "crash_rate": rate / 2.0,
                "mis_size": result.size,
                "epochs_used": result.epochs_used,
                "readmitted": result.readmitted,
                "conflict_edges": result.conflict_edges,
                "dominated_fraction": result.dominated_fraction,
                "radio_steps": report.steps,
            }
        )
        rows.append(row)
    return rows


def bench_leader_uptime_degradation(
    n: int = 400, seed: int = 808, horizon: int = 20000
) -> list[dict]:
    """Uptime-threshold election vs growing churn, one row each."""
    import repro.api as api
    from repro import graphs

    # Election floods need connectivity (unlike the overhead fixture).
    g = graphs.random_udg(
        n, float(np.sqrt(n * np.pi / 9.0)), np.random.default_rng(seed)
    )
    rows = []
    for churn in (0.0, 0.2, 0.4, 0.6):
        schedule = api.FaultSchedule.sample(
            n, horizon, seed=FAULT_SEED, churn=churn, crash_rate=churn / 4.0
        )
        report = api.run(
            "leader_uptime", g, seed=seed + 1,
            config=api.UptimeLeaderConfig(threshold=0.6, horizon=horizon),
            policy=api.ExecutionPolicy(faults=schedule),
        )
        result = report.result
        row = report.row()
        row.update(
            {
                "churn": churn,
                "crash_rate": churn / 4.0,
                "threshold": 0.6,
                "candidates": result.candidates,
                "elected": result.elected,
                "leader": result.leader,
                "radio_steps": report.steps,
            }
        )
        rows.append(row)
    return rows


def bench_bgi_jam_degradation(
    n: int = 400, seed: int = 909, sweeps: int = 24
) -> list[dict]:
    """Best-effort BGI broadcast vs growing jam rates, one row each."""
    from repro import graphs
    from repro.api import ExecutionPolicy, FaultSchedule
    from repro.baselines import bgi_broadcast
    from repro.radio import RadioNetwork

    g = graphs.random_udg(
        n, float(np.sqrt(n * np.pi / 9.0)), np.random.default_rng(seed)
    )
    # Size the jam horizon and the sweep budget from a fault-free
    # pre-run: the sampled windows then overlap the steps the broadcast
    # actually executes, and a budget that *just* suffices fault-free
    # makes jam-induced shortfall visible as informed_fraction < 1.
    baseline = bgi_broadcast(
        RadioNetwork(g), 0, np.random.default_rng(seed + 1),
        max_sweeps=sweeps, best_effort=True,
    )
    horizon = max(baseline.steps, 1)
    budget = max(baseline.sweeps, 1)
    rows = []
    for jam in (0.0, 0.1, 0.3, 0.5):
        schedule = FaultSchedule.sample(
            n, horizon, seed=FAULT_SEED, jam=jam
        )
        net = RadioNetwork(g, faults=schedule)
        result = bgi_broadcast(
            net, 0, np.random.default_rng(seed + 1),
            max_sweeps=budget, best_effort=True,
            policy=ExecutionPolicy(),
        )
        rows.append(
            {
                "jam": jam,
                "faults": None if schedule.is_empty else schedule.digest(),
                "jam_horizon": horizon,
                "sweep_budget": budget,
                "delivered": result.delivered,
                "sweeps_used": result.sweeps,
                "informed": result.informed_history[-1],
                "informed_fraction": result.informed_history[-1] / n,
                "steps": result.steps,
            }
        )
    return rows


def run_bench(n: int = 1200, degrade_n: int = 400) -> dict:
    """Run the PR 6 benchmarks and assemble the persistable record."""
    overhead = bench_disabled_overhead(n=n)
    return {
        "bench": "p6_faults",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fault_seed": FAULT_SEED,
        "disabled_overhead": overhead,
        "mis_restart_degradation": bench_mis_restart_degradation(
            n=degrade_n
        ),
        "leader_uptime_degradation": bench_leader_uptime_degradation(
            n=degrade_n
        ),
        "bgi_jam_degradation": bench_bgi_jam_degradation(n=degrade_n),
        "passes_floors": bool(
            overhead["empty_over_plain"] <= overhead["ceiling"]
        ),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Run, print, persist; exit nonzero if the overhead ceiling breaks."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=1200,
        help="overhead-gate MIS scale (default 1200)",
    )
    parser.add_argument(
        "--degrade-n", type=int, default=400,
        help="degradation-curve scale (default 400)",
    )
    args = parser.parse_args(argv)
    results = run_bench(n=args.n, degrade_n=args.degrade_n)
    o = results["disabled_overhead"]
    print(
        f"disabled-fault overhead n={o['n']}: empty "
        f"{o['empty_faults_best_s']:.3f}s vs none "
        f"{o['plain_best_s']:.3f}s = {o['empty_over_plain']:.4f}x "
        f"(ceiling {o['ceiling']}x)"
    )
    for row in results["mis_restart_degradation"]:
        print(
            f"mis_restart churn={row['churn']}: size={row['mis_size']} "
            f"readmitted={row['readmitted']} "
            f"conflicts={row['conflict_edges']} "
            f"dominated={row['dominated_fraction']:.3f}"
        )
    for row in results["leader_uptime_degradation"]:
        print(
            f"leader_uptime churn={row['churn']}: "
            f"candidates={row['candidates']} elected={row['elected']} "
            f"steps={row['radio_steps']}"
        )
    for row in results["bgi_jam_degradation"]:
        print(
            f"bgi jam={row['jam']}: informed="
            f"{row['informed_fraction']:.3f} delivered={row['delivered']} "
            f"sweeps={row['sweeps_used']}/{row['sweep_budget']}"
        )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
