"""E10 — implementation fidelity: radio Partition vs centralized MPX,
and Radio MIS vs Luby (the Section 4.1 trade).

Two sub-experiments:

1. Partition fidelity: the packet-level radio Partition of [18] should
   realize the centralized MPX clustering on the same (floored) shifts —
   measured as the fraction of nodes achieving the optimal shifted
   distance, and the mean-distance gap.

2. MIS model trade: Radio MIS pays O(log^2 n) radio steps per round to
   replace the LOCAL model's free neighborhood exchange; Luby's LOCAL
   algorithm uses fewer rounds but needs point-to-point messages no
   radio network can deliver directly. The table shows rounds, radio
   steps, and LOCAL message counts side by side.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro import baselines, graphs
from repro.analysis import TextTable
from repro.core import MISConfig, compute_mis, draw_shifts, partition_radio
from repro.graphs import greedy_independent_set
from repro.radio import RadioNetwork

from conftest import save_table


def run_partition_fidelity(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "beta",
            "optimal-rate",
            "mean dist (radio)",
            "mean dist (optimal)",
            "steps",
        ],
        title=(
            "E10a: radio Partition vs centralized MPX on shared shifts "
            "(claim: radio achieves the optimal shifted distance for "
            "almost all nodes)"
        ),
    )
    instances = {
        "udg(100)": graphs.random_udg(100, 5.0, rng),
        "gnp(80,.08)": graphs.connected_gnp(80, 0.08, rng),
        "grid 8x8": graphs.grid_udg(8, 8, rng),
    }
    for name, g in instances.items():
        mis = sorted(greedy_independent_set(g, rng, strategy="random"))
        for beta in (0.5, 0.25):
            net = RadioNetwork(g)
            shifts = draw_shifts(mis, beta, rng)
            int_shifts = {c: float(int(s)) for c, s in shifts.items()}
            radio_cl = partition_radio(
                net, beta, mis, rng, shifts=shifts, decay_amplification=6.0
            )
            dist = dict(nx.all_pairs_shortest_path_length(g))
            optimal = np.array(
                [
                    min(dist[v][c] - int_shifts[c] for c in mis)
                    for v in range(net.n)
                ]
            )
            achieved = np.array(
                [
                    dist[v][int(radio_cl.assignment[v])]
                    - int_shifts[int(radio_cl.assignment[v])]
                    for v in range(net.n)
                ]
            )
            opt_dist = np.array(
                [
                    min(dist[v][c] for c in mis)
                    for v in range(net.n)
                ]
            )
            table.add_row(
                [
                    name,
                    beta,
                    float((achieved == optimal).mean()),
                    float(radio_cl.mean_distance()),
                    float(opt_dist.mean()),
                    net.steps_elapsed,
                ]
            )
    return table


def run_mis_vs_luby(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "n",
            "radio rounds",
            "radio steps",
            "luby rounds",
            "luby messages",
        ],
        title=(
            "E10b: Radio MIS vs Luby-in-LOCAL (the Section 4.1 trade: "
            "radio pays log^2 n steps per round instead of free "
            "neighborhood exchange)"
        ),
    )
    for name, g in {
        "udg(100)": graphs.random_udg(100, 5.0, rng),
        "gnp(100,.06)": graphs.connected_gnp(100, 0.06, rng),
        "clique(64)": graphs.clique(64),
    }.items():
        net = RadioNetwork(g)
        ours = compute_mis(
            net, rng, MISConfig(oracle_degree=False, eed_C=8)
        )
        luby = baselines.luby_mis(g, rng)
        table.add_row(
            [
                name,
                g.number_of_nodes(),
                ours.rounds_used,
                ours.steps_used,
                luby.rounds,
                luby.messages,
            ]
        )
    return table


def test_e10_partition_fidelity(benchmark, results_dir):
    rng = np.random.default_rng(10001)
    g = graphs.random_udg(80, 4.5, rng)
    mis = sorted(greedy_independent_set(g))

    benchmark.pedantic(
        lambda: partition_radio(
            RadioNetwork(g), 0.3, mis, np.random.default_rng(5)
        ),
        rounds=3,
        iterations=1,
    )

    table = run_partition_fidelity(np.random.default_rng(10002))
    save_table(results_dir, "e10a_partition_fidelity", table.render())


def test_e10_mis_vs_luby(benchmark, results_dir):
    rng = np.random.default_rng(10003)
    g = graphs.random_udg(80, 4.5, rng)

    benchmark.pedantic(
        lambda: baselines.luby_mis(g, np.random.default_rng(5)),
        rounds=3,
        iterations=1,
    )

    table = run_mis_vs_luby(np.random.default_rng(10004))
    save_table(results_dir, "e10b_mis_vs_luby", table.render())
