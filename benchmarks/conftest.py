"""Shared helpers for the benchmark harness.

Each ``bench_eX_*.py`` module reproduces one experiment of DESIGN.md's
index (the paper has no numeric tables/figures — the experiments measure
its theorem claims). Conventions:

* every benchmark both *times* its experiment through pytest-benchmark
  and *prints/saves* the experiment's table — timings answer "how costly
  is the reproduction", tables answer "does the claim hold";
* tables are appended to ``benchmarks/results/`` so EXPERIMENTS.md can
  be regenerated from a bench run;
* workload sizes are chosen so the full suite finishes in minutes on a
  laptop. Shapes, not absolute constants, are the reproduction target.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory where benchmark tables are saved."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_table(results_dir: pathlib.Path, name: str, rendered: str) -> None:
    """Persist a rendered table (and echo it to stdout)."""
    path = results_dir / f"{name}.txt"
    path.write_text(rendered + "\n")
    print()
    print(rendered)
