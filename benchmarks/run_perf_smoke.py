"""Perf smoke harness: tier-1 tests + the engine benches, one command.

Runs the repository's tier-1 verification suite, a short
``bench_p1_engine`` pass (PR 1: batched delivery + CSR partition,
persisted to ``BENCH_PR1.json``), the ``bench_p2_engine`` pass
(PR 2: the unified windowed protocol engine — Radio MIS and
EstimateEffectiveDegree against their step-wise references, plus the
E1/E6 trial slices through ``run_trials_parallel`` — persisted to
``BENCH_PR2.json``), the ``bench_p3_engine`` pass (PR 3: the
window-multiplexed fused ICP path and the density-adaptive dense
window delivery — persisted to ``BENCH_PR3.json``), and the
``bench_p4_streaming`` pass (PR 4: streamed window execution at
``n = 10^5``, wall time *and* tracemalloc peak against the monolithic
``(w, n)`` footprint — persisted to ``BENCH_PR4.json``), and the
``bench_p5_api`` pass (PR 5: the ``repro.api.run`` front door within
2% of the direct entry points on the fused-ICP and streamed-EED hot
paths, rows in RunReport form — persisted to ``BENCH_PR5.json``), and
the ``bench_p6_faults`` pass (PR 6: the fault-injection layer — a run
with an empty ``FaultSchedule`` within 5% of one with none, plus
degradation curves for the robustness protocol variants — persisted
to ``BENCH_PR6.json``), and the ``bench_p7_kernels`` pass (PR 7:
residual-graph delivery + compiled chunk kernels — small-n
bit-identity of every accelerated leg, then the restricted-MIS
speedup gates at scale — persisted to ``BENCH_PR7.json``), and the
``bench_p8_corpus`` pass (PR 8: the graph corpus layer — cell-grid
CSR generation bit-compatible with the reference generators and at
least 10x faster, metadata-only mmap loads, and zero-copy
shared-memory trial workers with flat per-worker RSS — persisted to
``BENCH_PR8.json``), and the ``bench_p9_pipeline`` pass (PR 9: the
fused coin+fault+delivery pipeline — small-n bit-identity of the
fused pass against the unfused chunk paths (faulted legs included),
the fused-vs-unfused speedup gate at scale, and optionally the
end-to-end n = 10^6 corpus-store MIS — persisted to
``BENCH_PR9.json``), and the ``bench_p10_service`` pass (PR 10: the
experiment service — resubmitting a completed MIS campaign at least
50x faster than its cold run via the content-addressed report store,
store-backed aggregates bit-identical to the serial harness, and the
HTTP front end within 10% of driving the campaign engine directly on
a 200-trial decay campaign — persisted to ``BENCH_PR10.json``).
Every bench record carries ``peak_mem_bytes`` alongside its wall
times. The ``BENCH_*.json`` records are the perf trajectory future
PRs compare themselves against.

Usage::

    python benchmarks/run_perf_smoke.py [--skip-tests] [--skip-p1]
        [--skip-p4] [--skip-p5] [--skip-p6] [--skip-p7] [--skip-p8]
        [--skip-p9] [--skip-p10] [--n 2000] [--p4-n 100000]
        [--p5-n 100000] [--p6-n 1200] [--p7-n 100000]
        [--p8-n 100000] [--p9-n 100000] [--p9-e2e] [--p10-n 2000]
        [--p10-trials 200] [--p10-mis-trials 8]

Exit status is nonzero if the test suite fails or a speedup/memory
floor is missed, so this doubles as a CI gate.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def run_tier1() -> dict:
    """Run the tier-1 suite (``pytest -x -q`` over ``tests/``)."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "-x", "-q", "tests"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
    )
    elapsed = time.perf_counter() - t0
    tail = proc.stdout.strip().splitlines()[-1] if proc.stdout.strip() else ""
    print(f"tier-1: {tail} ({elapsed:.1f}s)")
    return {
        "returncode": proc.returncode,
        "summary": tail,
        "elapsed_s": elapsed,
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point: tier-1 suite, then the engine bench, then persist."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-tests",
        action="store_true",
        help="only run the engine benches",
    )
    parser.add_argument(
        "--skip-p1",
        action="store_true",
        help="skip the PR 1 bench (BENCH_PR1.json untouched)",
    )
    parser.add_argument(
        "--n",
        type=int,
        default=2000,
        help="benchmark graph size (acceptance floors assume >= 2000)",
    )
    parser.add_argument(
        "--skip-p4",
        action="store_true",
        help="skip the PR 4 streaming bench (BENCH_PR4.json untouched)",
    )
    parser.add_argument(
        "--p4-n",
        type=int,
        default=100000,
        help="scale of the PR 4 streaming bench (default 100000)",
    )
    parser.add_argument(
        "--skip-p5",
        action="store_true",
        help="skip the PR 5 API-overhead bench (BENCH_PR5.json untouched)",
    )
    parser.add_argument(
        "--p5-n",
        type=int,
        default=100000,
        help="scale of the PR 5 streamed-EED side (default 100000)",
    )
    parser.add_argument(
        "--skip-p6",
        action="store_true",
        help="skip the PR 6 fault-layer bench (BENCH_PR6.json untouched)",
    )
    parser.add_argument(
        "--p6-n",
        type=int,
        default=1200,
        help="scale of the PR 6 disabled-fault overhead gate "
        "(default 1200)",
    )
    parser.add_argument(
        "--skip-p7",
        action="store_true",
        help="skip the PR 7 residual/kernels bench (BENCH_PR7.json "
        "untouched)",
    )
    parser.add_argument(
        "--p7-n",
        type=int,
        default=100000,
        help="scale of the PR 7 restricted-MIS gate (default 100000; "
        "CI uses 30000)",
    )
    parser.add_argument(
        "--skip-p8",
        action="store_true",
        help="skip the PR 8 corpus bench (BENCH_PR8.json untouched)",
    )
    parser.add_argument(
        "--p8-n",
        type=int,
        default=100000,
        help="scale of the PR 8 corpus gates (default 100000; CI uses "
        "30000)",
    )
    parser.add_argument(
        "--skip-p9",
        action="store_true",
        help="skip the PR 9 pipeline bench (BENCH_PR9.json untouched)",
    )
    parser.add_argument(
        "--p9-n",
        type=int,
        default=100000,
        help="scale of the PR 9 fused-pipeline gate (default 100000; "
        "CI uses 30000)",
    )
    parser.add_argument(
        "--p9-e2e",
        action="store_true",
        help="also run the PR 9 end-to-end n=10^6 corpus-store MIS "
        "(minutes of wall clock; the smoke default skips it)",
    )
    parser.add_argument(
        "--skip-p10",
        action="store_true",
        help="skip the PR 10 service bench (BENCH_PR10.json untouched)",
    )
    parser.add_argument(
        "--p10-n",
        type=int,
        default=2000,
        help="scale of the PR 10 service campaigns (acceptance pins "
        "2000)",
    )
    parser.add_argument(
        "--p10-trials",
        type=int,
        default=200,
        help="PR 10 decay campaign trial count (acceptance pins 200)",
    )
    parser.add_argument(
        "--p10-mis-trials",
        type=int,
        default=8,
        help="PR 10 MIS campaign trial count for the cache gate",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    import bench_p1_engine
    import bench_p2_engine
    import bench_p3_engine
    import bench_p4_streaming
    import bench_p5_api
    import bench_p6_faults
    import bench_p7_kernels
    import bench_p8_corpus
    import bench_p9_pipeline
    import bench_p10_service

    tier1 = None if args.skip_tests else run_tier1()
    ok = tier1 is None or tier1["returncode"] == 0

    if not args.skip_p1:
        results = bench_p1_engine.run_bench(n=args.n)
        if tier1 is not None:
            results["tier1"] = tier1
        bench_p1_engine.write_results(results)

        radio, mpx = results["radio_window"], results["mpx_partition"]
        print(
            f"radio window speedup: {radio['speedup']:.1f}x "
            f"(floor {radio['floor']}x); "
            f"mpx partition speedup: {mpx['speedup']:.1f}x "
            f"(floor {mpx['floor']}x)"
        )
        print(f"persisted to {bench_p1_engine.RESULT_PATH}")
        ok = ok and results["passes_floors"]

    p2 = bench_p2_engine.run_bench(n=args.n)
    if tier1 is not None:
        p2["tier1"] = tier1
    bench_p2_engine.write_results(p2)

    mis, eed = p2["radio_mis"], p2["effective_degree"]
    print(
        f"radio MIS speedup: {mis['speedup']:.1f}x "
        f"(floor {mis['floor']}x); "
        f"effective degree speedup: {eed['speedup']:.1f}x "
        f"(floor {eed['floor']}x); "
        f"BGI: {p2['bgi_broadcast']['speedup']:.1f}x (no floor)"
    )
    print(f"persisted to {bench_p2_engine.RESULT_PATH}")
    ok = ok and p2["passes_floors"]

    p3 = bench_p3_engine.run_bench(n=args.n)
    if tier1 is not None:
        p3["tier1"] = tier1
    bench_p3_engine.write_results(p3)

    icp, dense = p3["fused_icp"], p3["dense_window"]
    print(
        f"fused ICP speedup: {icp['speedup']:.1f}x "
        f"(floor {icp['floor']}x); "
        f"dense EED block: {dense['block_speedup']:.2f}x "
        f"(floor {dense['block_floor']}x); "
        f"dense p=0.5 window: {dense['window_speedup']:.2f}x "
        f"(floor {dense['window_floor']}x)"
    )
    print(f"persisted to {bench_p3_engine.RESULT_PATH}")
    ok = ok and p3["passes_floors"]

    if not args.skip_p4:
        p4 = bench_p4_streaming.run_bench(n=args.p4_n)
        if tier1 is not None:
            p4["tier1"] = tier1
        bench_p4_streaming.write_results(p4)

        eed, dec = p4["streamed_eed"], p4["streamed_decay"]
        print(
            f"streamed EED n={eed['n']}: peak "
            f"{eed['peak_mem_bytes'] / 2**20:.0f} MiB, "
            f"{eed['mem_ratio']:.1f}x under monolithic "
            f"(floor {eed['floor']}x); streamed Decay: "
            f"{dec['mem_ratio']:.1f}x (floor {dec['floor']}x)"
        )
        print(f"persisted to {bench_p4_streaming.RESULT_PATH}")
        ok = ok and p4["passes_floors"]

    if not args.skip_p5:
        p5 = bench_p5_api.run_bench(n=args.p5_n)
        if tier1 is not None:
            p5["tier1"] = tier1
        bench_p5_api.write_results(p5)

        icp5, eed5 = p5["fused_icp"], p5["streamed_eed"]
        print(
            f"api front door: fused ICP "
            f"{icp5['api_over_legacy']:.4f}x of direct, streamed EED "
            f"{eed5['api_over_legacy']:.4f}x (ceiling "
            f"{icp5['ceiling']}x)"
        )
        print(f"persisted to {bench_p5_api.RESULT_PATH}")
        ok = ok and p5["passes_floors"]

    if not args.skip_p6:
        p6 = bench_p6_faults.run_bench(n=args.p6_n)
        if tier1 is not None:
            p6["tier1"] = tier1
        bench_p6_faults.write_results(p6)

        over = p6["disabled_overhead"]
        print(
            f"fault layer: empty schedule "
            f"{over['empty_over_plain']:.4f}x of none "
            f"(ceiling {over['ceiling']}x); degradation rows: "
            f"{len(p6['mis_restart_degradation'])} mis_restart, "
            f"{len(p6['leader_uptime_degradation'])} leader_uptime, "
            f"{len(p6['bgi_jam_degradation'])} bgi-jam"
        )
        print(f"persisted to {bench_p6_faults.RESULT_PATH}")
        ok = ok and p6["passes_floors"]

    if not args.skip_p7:
        p7 = bench_p7_kernels.run_bench(n=args.p7_n)
        if tier1 is not None:
            p7["tier1"] = tier1
        bench_p7_kernels.write_results(p7)

        legs = p7["mis_legs"]
        gate = (
            f"(floor {legs['numba_floor']}x)"
            if legs["numba_floor"] is not None
            else "(no numba: floor waived)"
        )
        print(
            f"residual MIS n={legs['n']}: restricted numpy "
            f"{legs['restrict_speedup']:.2f}x "
            f"(floor {legs['restrict_floor']}x), accelerated "
            f"[{legs['accelerated_kernel']}] "
            f"{legs['numba_speedup']:.2f}x {gate}"
        )
        print(f"persisted to {bench_p7_kernels.RESULT_PATH}")
        ok = ok and p7["passes_floors"]

    if not args.skip_p8:
        p8 = bench_p8_corpus.run_bench(n=args.p8_n)
        if tier1 is not None:
            p8["tier1"] = tier1
        bench_p8_corpus.write_results(p8)

        gen, store, shm = p8["generation"], p8["store"], p8["shm"]
        print(
            f"corpus n={gen['n']}: generation "
            f"{gen['speedup']:.1f}x (floor {gen['speedup_floor']}x); "
            f"mmap load {store['mmap_load_s'] * 1000:.1f}ms "
            f"(ceiling {store['load_ceiling_s'] * 1000:.0f}ms); "
            f"worker handle {shm['handle_bytes']}B "
            f"({shm['handle_ratio']:.0f}x under the pickled arrays); "
            f"pool==serial: {shm['pool_matches_serial']}"
        )
        print(f"persisted to {bench_p8_corpus.RESULT_PATH}")
        ok = ok and p8["passes_floors"]

    if not args.skip_p9:
        p9 = bench_p9_pipeline.run_bench(
            n=args.p9_n, skip_e2e=not args.p9_e2e
        )
        if tier1 is not None:
            p9["tier1"] = tier1
        bench_p9_pipeline.write_results(p9)

        legs = p9["pipeline_legs"]
        gate = (
            f"(floor {legs['numba_floor']}x)"
            if legs["numba_floor"] is not None
            else "(no numba: forced pipeline refuses by name)"
        )
        numba_part = (
            f"{legs['numba_speedup']:.2f}x "
            if legs["numba_speedup"] is not None
            else ""
        )
        print(
            f"fused pipeline n={legs['n']}: fused numpy "
            f"{legs['pipeline_speedup']:.2f}x "
            f"(floor {legs['pipeline_floor']}x), pipeline-numba "
            f"{numba_part}{gate}"
        )
        if p9["e2e_million"] is not None:
            e2e = p9["e2e_million"]
            print(
                f"e2e n={e2e['n']}: MIS {e2e['mis_s']:.1f}s, peak "
                f"{e2e['peak_mem_bytes'] / 2**30:.2f} GiB (ceiling "
                f"{e2e['peak_ceiling_bytes'] / 2**30:.1f} GiB)"
            )
        print(f"persisted to {bench_p9_pipeline.RESULT_PATH}")
        ok = ok and p9["passes_floors"]

    if not args.skip_p10:
        p10 = bench_p10_service.run_bench(
            n=args.p10_n,
            trials=args.p10_trials,
            mis_trials=args.p10_mis_trials,
        )
        if tier1 is not None:
            p10["tier1"] = tier1
        bench_p10_service.write_results(p10)

        cache, http = p10["cache"], p10["http"]
        print(
            f"service: resubmit {cache['cache_speedup']:.0f}x over "
            f"cold (floor {cache['cache_floor']:.0f}x); aggregates == "
            f"harness: {cache['aggregates_identical_to_harness']}; "
            f"http overhead {http['http_overhead']:+.1%} (ceiling "
            f"{http['http_overhead_ceiling']:.0%})"
        )
        print(f"persisted to {bench_p10_service.RESULT_PATH}")
        ok = ok and p10["passes_floors"]

    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
