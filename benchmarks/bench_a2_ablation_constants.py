"""Ablation A2 — the constants inside the O() notations.

Three constants govern the reproduction's behavior (DESIGN.md
substitution 3 exposes them all):

* ``c_ell`` — the ICP length multiplier. Too small and phases cannot
  reach cluster centers (progress stalls onto the slow background
  path); too large and every phase overpays. The sweet spot sits where
  Theorem 2's expected distance bound is covered.
* Decay amplification — Claim 10's iteration constant. Controls MIS
  correctness (independence violations appear when marked-neighbor
  announcements get lost).
* ``eed_C`` — Lemma 11's estimation constant. Controls desire-level
  update fidelity and hence MIS round counts.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable, success_rate
from repro.core import CompeteConfig, MISConfig, broadcast, compute_mis
from repro.graphs import is_independent_set, is_maximal_independent_set
from repro.radio import RadioNetwork

from conftest import save_table


def run_c_ell_sweep(rng) -> TextTable:
    table = TextTable(
        ["c_ell", "propagation rounds", "phases"],
        title=(
            "A2a: ICP length multiplier c_ell on a 3x40 grid "
            "(claim: a knee — too-short phases stall, long phases overpay)"
        ),
    )
    g = graphs.grid_udg(3, 40, rng)
    for c_ell in (0.5, 1.0, 2.0, 4.0, 8.0):
        rounds, phases = [], []
        for _ in range(3):
            result = broadcast(
                g, 0, rng, config=CompeteConfig(c_ell=c_ell)
            )
            rounds.append(result.propagation_rounds)
            phases.append(len(result.compete.phases))
        table.add_row([c_ell, float(np.mean(rounds)), float(np.mean(phases))])
    return table


def run_decay_amplification_sweep(rng) -> TextTable:
    table = TextTable(
        ["amplification", "independent", "maximal", "trials"],
        title=(
            "A2b: Decay amplification vs MIS validity on a 64-clique "
            "(claim: independence violations vanish as iterations grow)"
        ),
    )
    g = graphs.clique(64)
    trials = 10
    for amp in (0.25, 0.5, 1.0, 2.0, 4.0):
        independent, maximal = [], []
        for _ in range(trials):
            net = RadioNetwork(g)
            config = MISConfig(
                oracle_degree=True, decay_amplification=amp
            )
            result = compute_mis(net, rng, config)
            independent.append(is_independent_set(g, result.mis))
            maximal.append(is_maximal_independent_set(g, result.mis))
        table.add_row(
            [amp, success_rate(independent), success_rate(maximal), trials]
        )
    return table


def run_eed_c_sweep(rng) -> TextTable:
    table = TextTable(
        ["eed_C", "mean rounds", "mean steps", "valid rate"],
        title=(
            "A2c: EED constant C vs MIS cost on udg(80) "
            "(claim: small C misclassifies degrees and slows convergence; "
            "steps grow linearly in C)"
        ),
    )
    g = graphs.random_udg(80, 4.5, rng)
    for C in (1, 2, 4, 8, 16):
        rounds, steps, valid = [], [], []
        for _ in range(4):
            net = RadioNetwork(g)
            result = compute_mis(
                net, rng, MISConfig(oracle_degree=False, eed_C=C)
            )
            rounds.append(result.rounds_used)
            steps.append(result.steps_used)
            valid.append(
                result.all_removed
                and is_maximal_independent_set(g, result.mis)
            )
        table.add_row(
            [
                C,
                float(np.mean(rounds)),
                float(np.mean(steps)),
                success_rate(valid),
            ]
        )
    return table


def test_a2_c_ell(benchmark, results_dir):
    rng = np.random.default_rng(12001)
    g = graphs.grid_udg(3, 30, rng)

    benchmark.pedantic(
        lambda: broadcast(g, 0, np.random.default_rng(5)),
        rounds=3,
        iterations=1,
    )
    table = run_c_ell_sweep(np.random.default_rng(12002))
    save_table(results_dir, "a2a_c_ell_sweep", table.render())


def test_a2_decay_amplification(benchmark, results_dir):
    rng = np.random.default_rng(12003)
    g = graphs.clique(64)

    benchmark.pedantic(
        lambda: compute_mis(
            RadioNetwork(g),
            np.random.default_rng(5),
            MISConfig(oracle_degree=True),
        ),
        rounds=3,
        iterations=1,
    )
    table = run_decay_amplification_sweep(np.random.default_rng(12004))
    save_table(results_dir, "a2b_decay_amplification", table.render())


def test_a2_eed_c(benchmark, results_dir):
    rng = np.random.default_rng(12005)
    g = graphs.random_udg(60, 3.5, rng)

    benchmark.pedantic(
        lambda: compute_mis(
            RadioNetwork(g),
            np.random.default_rng(5),
            MISConfig(oracle_degree=False, eed_C=4),
        ),
        rounds=3,
        iterations=1,
    )
    table = run_eed_c_sweep(np.random.default_rng(12006))
    save_table(results_dir, "a2c_eed_c_sweep", table.render())
