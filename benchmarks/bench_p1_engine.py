"""P1 — vectorized hot-path engine: before/after timings (PR 1).

Measures the two engine rewrites of PR 1 against the seed
implementations, which are kept importable precisely so this comparison
stays honest:

* **radio window workload** — a packet-level Decay broadcast block on a
  UDG with ``n >= 2000`` nodes: the seed path drives the ``Decay``
  protocol one ``deliver`` at a time through ``run_steps``; the engine
  path executes the same block (same rng stream, bit-identical result)
  through ``RadioNetwork.deliver_window``'s single sparse product per
  chunk. Acceptance floor: **3x**.

* **repeated MPX partition draws** — ``Partition(beta, MIS)`` redrawn
  with shared shifts: the seed path is the pure-Python heap Dijkstra
  (``partition_reference``), the engine path the CSR-native frontier
  relaxation. Acceptance floor: **5x**.

Results are persisted to ``BENCH_PR1.json`` at the repo root so later
PRs have a trajectory to compare against. Run directly::

    PYTHONPATH=src python benchmarks/bench_p1_engine.py

or through ``benchmarks/run_perf_smoke.py`` (tier-1 suite + this).
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR1.json"

#: Acceptance floors from the PR 1 issue.
RADIO_WINDOW_FLOOR = 3.0
PARTITION_FLOOR = 5.0


def _workload_graph(n: int, seed: int):
    """The benchmark topology: a connected random UDG with n nodes."""
    from repro import graphs

    rng = np.random.default_rng(seed)
    return graphs.random_udg(n, 1.6, rng)


def bench_radio_window(n: int = 2000, seed: int = 101) -> dict:
    """Time a Decay broadcast block: per-step engine vs. batched window.

    Both paths execute the identical protocol with identical randomness;
    the equivalence is separately pinned by
    ``tests/test_engine_vectorized.py``, so this function only times.
    """
    from repro.core.decay import Decay, claim10_iterations, run_decay
    from repro.radio import RadioNetwork, run_steps

    g = _workload_graph(n, seed)
    active = np.random.default_rng(seed + 1).random(n) < 0.5
    iterations = claim10_iterations(n)

    net_seq = RadioNetwork(g)
    protocol = Decay(net_seq, active, iterations=iterations)
    t0 = time.perf_counter()
    run_steps(protocol, np.random.default_rng(seed + 2), protocol.total_steps)
    sequential_s = time.perf_counter() - t0
    steps = net_seq.steps_elapsed

    batched_s = float("inf")
    for _ in range(3):  # best-of-3: the batched path is noise-sensitive
        net_win = RadioNetwork(g)
        t0 = time.perf_counter()
        run_decay(net_win, active, np.random.default_rng(seed + 2),
                  iterations=iterations)
        batched_s = min(batched_s, time.perf_counter() - t0)

    return {
        "workload": "decay broadcast window (packet level)",
        "n": n,
        "edges": g.number_of_edges(),
        "steps": steps,
        "sequential_s": sequential_s,
        "batched_s": batched_s,
        "speedup": sequential_s / batched_s,
        "floor": RADIO_WINDOW_FLOOR,
    }


def bench_partition(n: int = 2000, draws: int = 3, seed: int = 202) -> dict:
    """Time repeated MPX partition draws: heap Dijkstra vs. CSR frontier.

    Draws share shifts pairwise so both engines solve the identical
    instance; bit-identity of the outputs is pinned by the equivalence
    tests.
    """
    from repro.core.mpx import draw_shifts, partition, partition_reference
    from repro.graphs.context import graph_context

    g = _workload_graph(n, seed)
    rng = np.random.default_rng(seed + 1)
    centers = sorted(graph_context(g).mis(), key=int)
    beta = 0.25
    shift_draws = [draw_shifts(centers, beta, rng) for _ in range(draws)]

    t0 = time.perf_counter()
    for shifts in shift_draws:
        partition_reference(g, beta, centers, rng, shifts=shifts)
    dijkstra_s = time.perf_counter() - t0

    # Warm the context cache outside the timed region: repeated draws
    # are exactly the scenario the cache exists for.
    graph_context(g).identity_csr()
    t0 = time.perf_counter()
    for shifts in shift_draws:
        partition(g, beta, centers, rng, shifts=shifts)
    frontier_s = time.perf_counter() - t0

    return {
        "workload": f"MPX partition, {draws} draws (beta={beta}, MIS centers)",
        "n": n,
        "edges": g.number_of_edges(),
        "centers": len(centers),
        "draws": draws,
        "dijkstra_s": dijkstra_s,
        "frontier_s": frontier_s,
        "speedup": dijkstra_s / frontier_s,
        "floor": PARTITION_FLOOR,
    }


def peak_memory(n: int = 2000, seed: int = 101) -> int:
    """Tracemalloc peak of the engine-path radio window workload.

    A separate traced pass: tracing taxes small allocations heavily
    enough to distort the floor-gated timing ratios, so the timed
    benches run untraced and this re-execution records the memory side
    of the trajectory.
    """
    from repro.analysis.experiments import measure_peak
    from repro.core.decay import claim10_iterations, run_decay
    from repro.radio import RadioNetwork

    g = _workload_graph(n, seed)
    active = np.random.default_rng(seed + 1).random(n) < 0.5
    net = RadioNetwork(g)
    _, peak = measure_peak(
        lambda: run_decay(
            net, active, np.random.default_rng(seed + 2),
            iterations=claim10_iterations(n),
        )
    )
    return int(peak)


def run_bench(n: int = 2000) -> dict:
    """Run both engine benchmarks and assemble the persistable record.

    ``peak_mem_bytes`` (tracemalloc over the engine-path radio window
    workload, numpy buffers included) rides alongside the wall times so
    the ``BENCH_*.json`` trajectory tracks memory as well as speed.
    """
    radio = bench_radio_window(n=n)
    mpx = bench_partition(n=n)
    return {
        "bench": "p1_engine",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "peak_mem_bytes": peak_memory(n=n),
        "radio_window": radio,
        "mpx_partition": mpx,
        "passes_floors": bool(
            radio["speedup"] >= radio["floor"]
            and mpx["speedup"] >= mpx["floor"]
        ),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main() -> int:
    """Run, print, persist; exit nonzero if a speedup floor is missed."""
    results = run_bench()
    radio, mpx = results["radio_window"], results["mpx_partition"]
    print(
        f"radio window  (n={radio['n']}, {radio['steps']} steps): "
        f"{radio['sequential_s']:.2f}s -> {radio['batched_s']:.2f}s "
        f"= {radio['speedup']:.1f}x (floor {radio['floor']}x)"
    )
    print(
        f"mpx partition (n={mpx['n']}, {mpx['draws']} draws):      "
        f"{mpx['dijkstra_s']:.2f}s -> {mpx['frontier_s']:.2f}s "
        f"= {mpx['speedup']:.1f}x (floor {mpx['floor']}x)"
    )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
