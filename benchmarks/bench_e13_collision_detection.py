"""E13 — what collision detection buys (the paper's model boundary).

The paper's results hold *without* collision detection; several prior
geometric results ([29], [12]) need it. This experiment makes the model
boundary measurable by comparing, on diameter sweeps:

* CD deterministic broadcast (energy-coded bits, ``O(D log n)``);
* no-CD deterministic round-robin (``O(n D)`` — the deterministic
  floor; the best known without CD is still ``Omega(n)``-ish);
* no-CD *randomized* BGI (``O(D log n + log^2 n)``).

The claim to see: randomization substitutes for collision detection —
BGI (no CD) tracks the CD deterministic curve while the no-CD
deterministic baseline is off by a factor ~n/log n. That is exactly why
the paper can match geometric-class results without the CD assumption.
"""

from __future__ import annotations

import math

import numpy as np

from repro import baselines, graphs
from repro.analysis import TextTable
from repro.radio import RadioNetwork

from conftest import save_table


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "n",
            "D",
            "CD det steps",
            "no-CD det steps",
            "no-CD rand steps",
            "CD/(D log n)",
            "rand/(D log n)",
        ],
        title=(
            "E13: the collision-detection boundary (claim: randomization "
            "substitutes for CD; determinism without CD pays ~n per hop)"
        ),
    )
    instances = {
        "path(30)": (graphs.path(30), 29),
        "path(60)": (graphs.path(60), 59),
        "grid 3x20": (graphs.grid_udg(3, 20, rng), 0),
        "grid 3x40": (graphs.grid_udg(3, 40, rng), 0),
        "two-cliques(15)": (graphs.two_cliques_bottleneck(15), 0),
    }
    for name, (g, source) in instances.items():
        n = g.number_of_nodes()
        d = graphs.diameter(g)
        net_cd = RadioNetwork(g)
        cd = baselines.cd_broadcast(net_cd, source).steps
        net_rr = RadioNetwork(g)
        rr = baselines.round_robin_broadcast(net_rr, source).steps
        net_bgi = RadioNetwork(g)
        rand = baselines.bgi_broadcast(net_bgi, source, rng).steps
        dlogn = d * math.log2(n)
        table.add_row(
            [name, n, d, cd, rr, rand, cd / dlogn, rand / dlogn]
        )
    return table


def test_e13_collision_detection(benchmark, results_dir):
    rng = np.random.default_rng(16001)
    g = graphs.grid_udg(3, 20, rng)

    benchmark.pedantic(
        lambda: baselines.cd_broadcast(RadioNetwork(g), 0),
        rounds=3,
        iterations=1,
    )
    table = run_experiment(np.random.default_rng(16002))
    save_table(results_dir, "e13_collision_detection", table.render())
