"""P4 — streaming window execution: the first ``n >= 10^5`` runs (PR 4).

The PR 4 tentpole turned window execution into a streaming plan/commit
pipeline: protocol blocks go out as lazy
:class:`~repro.engine.segments.StreamedWindow` plans and the runner
executes them in ``(chunk_steps, n)`` slabs picked from a peak-memory
budget, so the dense ``(w, n)`` hear-window — the piece that stalled
every experiment beyond ``n = 10^4`` — never materializes. This bench
records what that unlocks:

* **Streamed EstimateEffectiveDegree** at ``n = 10^5`` (the E1/E2
  scaling slice's dominant block): wall time plus the tracemalloc peak
  of the streamed run, against the *monolithic footprint* — the
  ``w * n * 9`` bytes the pre-streaming engine would need just for the
  block's boolean masks and int64 hear-window. Acceptance floor: peak
  at least **4x** below the monolithic footprint.

* **Streamed Decay block** at the same ``n`` (Radio MIS's other
  sub-protocol), same accounting.

Bit-identity is asserted at a small ``n`` before any large run is
timed (streamed vs the step-wise reference, results and rng state), so
the numbers reported are for the verified configuration.

Results persist to ``BENCH_PR4.json``. Run directly::

    PYTHONPATH=src python benchmarks/bench_p4_streaming.py --n 100000

or through ``benchmarks/run_perf_smoke.py``, whose ``--p4-n`` default
is the full ``100000`` (the streamed runs finish in seconds — that is
the point) with ``--skip-p4``/``--p4-n`` to opt down; CI runs this
bench in its own wall-clock-capped ``streaming-large-n`` job and skips
it in the perf-smoke job.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR4.json"

#: Acceptance floor from the PR 4 issue: streamed peak memory at least
#: this many times below the monolithic (w, n) mask + hear footprint.
MEM_RATIO_FLOOR = 4.0

#: Default streaming budget for the large runs (the CLI's --mem-budget
#: analogue). 64 MiB keeps a 10^5-node run laptop-sized — and is what
#: the pre-streaming engine could not come close to: the EED block's
#: monolithic mask + hear footprint alone is ~0.5 GiB at this scale.
MEM_BUDGET = 64 << 20

#: Bytes per (step, node) cell of the monolithic window: the boolean
#: mask matrix (1) plus the int64 hear-window (8) the pre-streaming
#: engine materialized per block.
MONOLITHIC_CELL_BYTES = 9


def _udg(n: int, seed: int):
    """Sparse UDG (~9 average degree), the scaling-sweep family.

    Connectivity is not required by MIS/EED and is not enforced — at
    ``n = 10^5`` and constant average degree a connected sample is
    vanishingly rare, exactly the regime the paper's local algorithms
    are for.
    """
    from repro import graphs

    side = float(np.sqrt(n * np.pi / 9.0))
    return graphs.random_udg(
        n, side, np.random.default_rng(seed), connected=False
    )


def _assert_small_scale_identity(seed: int = 901) -> None:
    """Streamed == reference at a small n, before timing anything big."""
    from repro.core.decay import run_decay, run_decay_reference
    from repro.core.effective_degree import (
        estimate_effective_degree,
        estimate_effective_degree_reference,
    )
    from repro.radio import RadioNetwork

    g = _udg(500, seed)
    p = np.full(500, 0.5)
    active = np.ones(500, dtype=bool)
    rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
    a = estimate_effective_degree(
        RadioNetwork(g), p, active, rng_a, C=2, chunk_steps=13
    )
    b = estimate_effective_degree_reference(
        RadioNetwork(g), p, active, rng_b, C=2
    )
    assert (a.counts == b.counts).all()
    assert rng_a.bit_generator.state == rng_b.bit_generator.state
    rng_a, rng_b = np.random.default_rng(8), np.random.default_rng(8)
    da = run_decay(RadioNetwork(g), active, rng_a, iterations=4,
                   chunk_steps=13)
    db = run_decay_reference(RadioNetwork(g), active, rng_b, iterations=4)
    assert (da.heard_from == db.heard_from).all()
    assert rng_a.bit_generator.state == rng_b.bit_generator.state


def bench_streamed_eed(
    n: int, seed: int = 902, C: int = 2, mem_budget: int = MEM_BUDGET
) -> dict:
    """One streamed EstimateEffectiveDegree block at scale ``n``."""
    from repro.analysis.experiments import measure_peak
    from repro.core.effective_degree import (
        EstimateEffectiveDegree,
        estimate_effective_degree,
    )
    from repro.engine import resolve_chunk_steps
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, seed)
    net = RadioNetwork(g, trace=CheapTrace())
    p = np.full(n, 0.5)
    active = np.ones(n, dtype=bool)
    total = EstimateEffectiveDegree(net, p, active, C=C).total_steps

    def workload():
        return estimate_effective_degree(
            net, p, active, np.random.default_rng(seed + 1), C=C,
            mem_budget=mem_budget,
        )

    # Two passes: wall time untraced (tracemalloc taxes allocations),
    # then the same seeded run traced for its peak.
    t0 = time.perf_counter()
    result = workload()
    wall = time.perf_counter() - t0
    _, peak = measure_peak(workload)
    monolithic = total * n * MONOLITHIC_CELL_BYTES
    return {
        "workload": (
            "EstimateEffectiveDegree block, streamed (mem-budgeted "
            "slabs) at scale"
        ),
        "n": n,
        "edges": g.number_of_edges(),
        "C": C,
        "steps": total,
        "high_count": int(result.high.sum()),
        "chunk_steps": resolve_chunk_steps(n, mem_budget=mem_budget),
        "mem_budget_bytes": mem_budget,
        "wall_s": wall,
        "peak_mem_bytes": int(peak),
        "monolithic_window_bytes": monolithic,
        "mem_ratio": monolithic / max(1, peak),
        "floor": MEM_RATIO_FLOOR,
    }


def bench_streamed_decay(
    n: int, seed: int = 903, mem_budget: int = MEM_BUDGET
) -> dict:
    """One streamed Claim-10 Decay block at scale ``n``."""
    from repro.analysis.experiments import measure_peak
    from repro.core.decay import claim10_iterations, run_decay
    from repro.engine import resolve_chunk_steps
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, seed)
    net = RadioNetwork(g, trace=CheapTrace())
    active = np.random.default_rng(seed).random(n) < 0.5
    iterations = claim10_iterations(n)

    def workload():
        return run_decay(
            net, active, np.random.default_rng(seed + 1),
            iterations=iterations, mem_budget=mem_budget,
        )

    # Two passes: wall time untraced (tracemalloc taxes allocations),
    # then the same seeded run traced for its peak.
    t0 = time.perf_counter()
    result = workload()
    wall = time.perf_counter() - t0
    total = net.steps_elapsed  # snapshot before the traced re-run
    _, peak = measure_peak(workload)
    monolithic = total * n * MONOLITHIC_CELL_BYTES
    return {
        "workload": "Claim-10 Decay block, streamed at scale",
        "n": n,
        "edges": g.number_of_edges(),
        "iterations": iterations,
        "steps": total,
        "heard_fraction": float(result.heard.mean()),
        "chunk_steps": resolve_chunk_steps(n, mem_budget=mem_budget),
        "mem_budget_bytes": mem_budget,
        "wall_s": wall,
        "peak_mem_bytes": int(peak),
        "monolithic_window_bytes": monolithic,
        "mem_ratio": monolithic / max(1, peak),
        "floor": MEM_RATIO_FLOOR,
    }


def run_bench(n: int = 100000, mem_budget: int = MEM_BUDGET) -> dict:
    """Run the PR 4 benchmarks and assemble the persistable record."""
    _assert_small_scale_identity()
    eed = bench_streamed_eed(n, mem_budget=mem_budget)
    decay = bench_streamed_decay(n, mem_budget=mem_budget)
    return {
        "bench": "p4_streaming",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "streamed_eed": eed,
        "streamed_decay": decay,
        "passes_floors": bool(
            eed["mem_ratio"] >= eed["floor"]
            and decay["mem_ratio"] >= decay["floor"]
        ),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Run, print, persist; exit nonzero if the memory floor is missed."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=100000, help="scale (default 100000)"
    )
    parser.add_argument(
        "--mem-budget",
        type=int,
        default=MEM_BUDGET,
        help="streaming budget in bytes (default 64 MiB)",
    )
    args = parser.parse_args(argv)
    results = run_bench(n=args.n, mem_budget=args.mem_budget)
    for key in ("streamed_eed", "streamed_decay"):
        r = results[key]
        print(
            f"{key:14s} n={r['n']}: {r['steps']} steps in "
            f"{r['wall_s']:.1f}s, peak {r['peak_mem_bytes'] / 2**20:.0f} "
            f"MiB vs monolithic "
            f"{r['monolithic_window_bytes'] / 2**20:.0f} MiB = "
            f"{r['mem_ratio']:.1f}x (floor {r['floor']}x)"
        )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
