"""Ablation A1 — the center set is the paper's whole trick.

Algorithm 2 differs from [7] in one structural choice: cluster centers
come from a maximal independent set. This ablation isolates that choice
by clustering the same graph with (a) MIS centers, (b) all nodes ([7]),
and (c) random center sets of the MIS's size — measuring the mean
node-to-center distance each induces. Claims to see:

* MIS centers match all-nodes centers up to constants (clusters stay
  small) — so the change costs nothing;
* *random* same-size center sets are materially worse on structured
  graphs: maximality (domination) is what keeps every node near a
  center, not the count. This is why the paper needs an MIS and not
  just any sparse subset.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.core import partition
from repro.graphs import greedy_independent_set

from conftest import save_table

DRAWS = 15


def _mean_distance(g, beta, centers, rng) -> float:
    values = [
        partition(g, beta, centers, rng).mean_distance() for _ in range(DRAWS)
    ]
    return float(np.mean(values))


def run_experiment(rng) -> TextTable:
    table = TextTable(
        ["graph", "beta", "centers", "k", "mean dist"],
        title=(
            "A1: center-set ablation (claim: MIS ~ all-nodes; random "
            "same-size sets are worse — maximality matters)"
        ),
    )
    instances = {
        "grid-udg 10x10": graphs.grid_udg(10, 10, rng),
        "clique-chain(8,8)": graphs.clique_chain(8, 8),
        "gnp(100,.06)": graphs.connected_gnp(100, 0.06, rng),
    }
    for name, g in instances.items():
        nodes = list(g.nodes)
        mis = sorted(greedy_independent_set(g, rng, strategy="random"))
        random_same_size = sorted(
            int(v) for v in rng.choice(nodes, size=len(mis), replace=False)
        )
        for beta in (0.5, 0.25):
            for label, centers in (
                ("mis", mis),
                ("all", nodes),
                ("random-k", random_same_size),
            ):
                table.add_row(
                    [
                        name,
                        beta,
                        label,
                        len(centers),
                        _mean_distance(g, beta, centers, rng),
                    ]
                )
    return table


def test_a1_ablation_centers(benchmark, results_dir):
    rng = np.random.default_rng(11001)
    g = graphs.grid_udg(10, 10, rng)
    mis = sorted(greedy_independent_set(g))

    benchmark.pedantic(
        lambda: partition(g, 0.25, mis, np.random.default_rng(5)),
        rounds=5,
        iterations=1,
    )

    table = run_experiment(np.random.default_rng(11002))
    save_table(results_dir, "a1_ablation_centers", table.render())
