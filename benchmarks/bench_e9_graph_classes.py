"""E9 — Section 1.3: geometric classes are growth-bounded, general ones
are not.

For every generator in :mod:`repro.graphs`, reports the headline graph
parameters (n, D, alpha, log_D alpha), the ball-independence growth
exponent (claim: bounded ~2 for the 2-D geometric classes, unbounded
for stars), and the alpha = poly(D) relationship that Corollary 9's
O(D + polylog n) running time rests on.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.graphs import EuclideanBox, FlatTorus

from conftest import save_table


def _instances(rng):
    return {
        "udg": graphs.random_udg(150, 7.0, rng),
        "grid-udg": graphs.grid_udg(12, 12, rng),
        "quasi-udg": graphs.random_qudg(150, 6.0, rng, r=0.7, R=1.0),
        "unit-ball-3d": graphs.random_unit_ball_graph(
            EuclideanBox(dim=3, side=3.2), 150, rng
        ),
        "unit-ball-torus": graphs.random_unit_ball_graph(
            FlatTorus(dim=2, side=6.0), 150, rng
        ),
        "geom-radio": graphs.random_geometric_radio(
            150, 6.0, rng, range_min=0.9, range_max=1.2
        ),
        "clique-chain": graphs.clique_chain(10, 15),
        "path": graphs.path(150),
        "star": graphs.star(150),
        "gnp": graphs.connected_gnp(150, 0.04, rng),
        "tree": graphs.random_tree(150, rng),
    }


GEOMETRIC = {
    "udg",
    "grid-udg",
    "quasi-udg",
    "unit-ball-3d",
    "unit-ball-torus",
    "geom-radio",
}


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "family",
            "n",
            "m",
            "D",
            "alpha",
            "log_D(alpha)",
            "growth exp",
            "geometric",
        ],
        title=(
            "E9: graph classes (claims: geometric classes have bounded "
            "growth exponent and alpha = poly(D); star's radius-1 balls "
            "already hold n-1 independent nodes)"
        ),
    )
    for name, g in _instances(rng).items():
        summary = graphs.summarize(g)
        try:
            profile = graphs.ball_independence_profile(
                g, [1, 2, 3], rng, n_centers=6
            )
            exponent = graphs.growth_exponent(profile)
        except ValueError:
            exponent = float("nan")
        table.add_row(
            [
                name,
                summary.n,
                summary.m,
                summary.D,
                summary.alpha,
                summary.log_d_alpha,
                exponent,
                name in GEOMETRIC,
            ]
        )
    return table


def test_e9_graph_classes(benchmark, results_dir):
    rng = np.random.default_rng(9001)

    def summarize_udg():
        g = graphs.random_udg(150, 7.0, np.random.default_rng(5))
        return graphs.summarize(g)

    benchmark.pedantic(summarize_udg, rounds=3, iterations=1)

    table = run_experiment(np.random.default_rng(9002))
    save_table(results_dir, "e9_graph_classes", table.render())
