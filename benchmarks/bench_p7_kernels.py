"""P7 — residual-graph delivery + compiled chunk kernels at n = 10^5.

PR 7 made the streamed engine *scale-proportional to the live set*
instead of to ``n``: active-set-restricted delivery through residual
contexts (:mod:`repro.engine.residual`), fused per-round MIS plans,
and a registered compiled chunk kernel (numba ``@njit`` CSR, numpy
fallback). Three claims to pin, all on end-to-end Radio MIS under a
**256 MiB** streaming budget:

* **Bit-identity first.** At a small n, every accelerated leg —
  ``restrict="force"``, ``restrict="auto"``, and ``delivery="numba"``
  when installed — reproduces the unrestricted run exactly: MIS
  result, steps, per-phase trace totals, and the final rng state.
  A timing row is meaningless unless this passes, so it gates.
* **Restriction alone pays.** Pure-NumPy restricted MIS (the numba
  probe is forced off for both sides, so CI machines with numba
  measure the same thing this container does) beats the PR 6 windowed
  baseline by at least **1.5x** wall-clock.
* **The compiled kernel pays on top.** With numba installed, the
  restricted + ``@njit``-CSR leg beats the baseline by at least
  **3x**. Without numba the leg is recorded but the floor is waived
  (the CI optional-deps matrix runs the gated form).

Rows persist to ``BENCH_PR7.json``. Run directly::

    PYTHONPATH=src python benchmarks/bench_p7_kernels.py --n 100000

or through ``benchmarks/run_perf_smoke.py`` (``--skip-p7`` /
``--p7-n`` to opt down; CI uses ``--p7-n 30000``).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import platform
import time
import tracemalloc
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR7.json"

#: Streaming memory budget every timed leg runs under (the ISSUE 7
#: acceptance envelope for n = 10^5).
MEM_BUDGET = "256M"

#: Pure-NumPy restricted MIS over the PR 6 windowed baseline.
RESTRICT_FLOOR = 1.5

#: Restricted + numba ``@njit`` CSR kernel over the same baseline
#: (gated only where numba is installed).
NUMBA_FLOOR = 3.0


@contextlib.contextmanager
def _numpy_only():
    """Force the numba probe off so a leg measures pure NumPy.

    The auto router silently upgrades sparse rows to the ``@njit``
    kernel wherever numba imports, so on a CI machine with numba the
    baseline and restricted-numpy legs would quietly measure the
    compiled kernel. Pinning the probe cache keeps those two legs
    comparable across environments.
    """
    from repro.engine import kernels

    prior = kernels._probe_cache.get("numba")
    kernels._probe_cache["numba"] = False
    try:
        yield
    finally:
        if prior is None:
            kernels._probe_cache.pop("numba", None)
        else:
            kernels._probe_cache["numba"] = prior


def _udg(n: int, seed: int):
    """The benchmark UDG family (matches bench_p3..p6 fixtures)."""
    from repro import graphs

    side = float(np.sqrt(n * np.pi / 9.0))
    return graphs.random_udg(
        n, side, np.random.default_rng(seed), connected=False
    )


def _policy(**kwargs):
    import repro.api as api

    return api.ExecutionPolicy(
        mem_budget=api.parse_mem_budget(MEM_BUDGET),
        trace="cheap",
        **kwargs,
    )


def _mis_once(g, seed: int, policy):
    from repro.core import MISConfig, compute_mis
    from repro.radio import RadioNetwork

    net = RadioNetwork(g)
    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    result = compute_mis(net, rng, MISConfig(eed_C=2), policy=policy)
    wall = time.perf_counter() - t0
    return result, net, rng, wall


def check_bit_identity(n: int = 1500, seed: int = 71) -> dict:
    """Every accelerated leg equals the unrestricted run, exactly."""
    from repro.engine.kernels import probe_numba

    g = _udg(n, seed)
    legs = {
        "off": _policy(restrict="off"),
        "force": _policy(restrict="force"),
        "auto": _policy(restrict="auto"),
    }
    if probe_numba():  # pragma: no cover - CI optional-deps leg
        legs["numba"] = _policy(restrict="auto", delivery="numba")
    runs = {
        name: _mis_once(g, seed + 1, pol) for name, pol in legs.items()
    }
    ref_res, ref_net, ref_rng, _ = runs["off"]
    checked = []
    for name, (res, net, rng, _) in runs.items():
        assert res.mis == ref_res.mis, name
        assert res.steps_used == ref_res.steps_used, name
        assert res.history == ref_res.history, name
        assert net.steps_elapsed == ref_net.steps_elapsed, name
        assert net.trace.total_steps == ref_net.trace.total_steps, name
        assert (
            net.trace.total_transmissions
            == ref_net.trace.total_transmissions
        ), name
        assert (
            net.trace.total_receptions == ref_net.trace.total_receptions
        ), name
        assert (
            rng.bit_generator.state == ref_rng.bit_generator.state
        ), name
        checked.append(name)
    return {
        "n": n,
        "edges": g.number_of_edges(),
        "mis_size": len(ref_res.mis),
        "steps": ref_res.steps_used,
        "legs": checked,
        "identical": True,
    }


def bench_mis_legs(n: int, seed: int = 72) -> dict:
    """The timed legs: baseline, restricted-numpy, accelerated."""
    from repro.engine.kernels import compiled_kernel_name, probe_numba

    g = _udg(n, seed)
    edges = g.number_of_edges()

    with _numpy_only():
        base_res, base_net, _, base_s = _mis_once(
            g, seed + 1, _policy(restrict="off")
        )
        rest_res, rest_net, _, rest_s = _mis_once(
            g, seed + 1, _policy(restrict="auto")
        )
    assert rest_res.mis == base_res.mis
    assert rest_res.steps_used == base_res.steps_used

    have_numba = probe_numba()
    accel_policy = _policy(
        restrict="auto", delivery="numba" if have_numba else "auto"
    )
    if have_numba:  # pragma: no cover - CI optional-deps leg
        _mis_once(g, seed + 1, accel_policy)  # untimed JIT warmup
    accel_res, accel_net, _, accel_s = _mis_once(
        g, seed + 1, accel_policy
    )
    assert accel_res.mis == base_res.mis
    assert accel_res.steps_used == base_res.steps_used

    # Peak footprint of the restricted leg, measured separately so the
    # tracemalloc hooks never touch a timed run.
    tracemalloc.start()
    with _numpy_only():
        _mis_once(g, seed + 1, _policy(restrict="auto"))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    restrict_speedup = base_s / rest_s
    numba_speedup = base_s / accel_s
    return {
        "workload": "end-to-end Radio MIS, streamed under "
        f"{MEM_BUDGET} (eed_C=2)",
        "n": n,
        "edges": edges,
        "mis_size": len(base_res.mis),
        "steps": base_res.steps_used,
        "mem_budget": MEM_BUDGET,
        "baseline_s": base_s,
        "restricted_numpy_s": rest_s,
        "accelerated_s": accel_s,
        "restrict_speedup": restrict_speedup,
        "restrict_floor": RESTRICT_FLOOR,
        "numba_available": have_numba,
        "accelerated_kernel": compiled_kernel_name(
            "numba" if have_numba else "auto"
        ),
        "numba_speedup": numba_speedup,
        "numba_floor": NUMBA_FLOOR if have_numba else None,
        "peak_mem_bytes": peak,
        "residual_stats": dict(rest_net.residual_stats),
        "baseline_kernel_use": dict(base_net.kernel_use),
        "restricted_kernel_use": dict(rest_net.kernel_use),
        "accelerated_kernel_use": dict(accel_net.kernel_use),
    }


def run_bench(n: int = 100000, identity_n: int = 1500) -> dict:
    """Run the PR 7 benchmarks and assemble the persistable record."""
    identity = check_bit_identity(n=identity_n)
    legs = bench_mis_legs(n=n)
    passes = legs["restrict_speedup"] >= legs["restrict_floor"]
    if legs["numba_floor"] is not None:  # pragma: no cover - CI leg
        passes = passes and (
            legs["numba_speedup"] >= legs["numba_floor"]
        )
    return {
        "bench": "p7_kernels",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "bit_identity": identity,
        "mis_legs": legs,
        "passes_floors": bool(passes and identity["identical"]),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Run, print, persist; exit nonzero if a floor breaks."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=100000,
        help="timed MIS scale (acceptance assumes 100000; CI uses "
        "30000)",
    )
    parser.add_argument(
        "--identity-n", type=int, default=1500,
        help="bit-identity check scale (default 1500)",
    )
    args = parser.parse_args(argv)
    results = run_bench(n=args.n, identity_n=args.identity_n)
    legs = results["mis_legs"]
    ident = results["bit_identity"]
    print(
        f"bit-identity n={ident['n']}: legs {ident['legs']} identical"
    )
    gate = (
        f" (floor {legs['numba_floor']}x)"
        if legs["numba_floor"] is not None
        else " (no numba: floor waived)"
    )
    print(
        f"MIS n={legs['n']}: baseline {legs['baseline_s']:.2f}s, "
        f"restricted numpy {legs['restricted_numpy_s']:.2f}s "
        f"= {legs['restrict_speedup']:.2f}x "
        f"(floor {legs['restrict_floor']}x), "
        f"accelerated [{legs['accelerated_kernel']}] "
        f"{legs['accelerated_s']:.2f}s "
        f"= {legs['numba_speedup']:.2f}x{gate}, "
        f"peak {legs['peak_mem_bytes'] / 2**20:.0f} MiB"
    )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
