"""P5 — the API front door: RunReport-shaped rows, zero-cost accounting.

PR 5 rebuilt the public surface around ``repro.api.run`` — one uniform
entry point wrapping every protocol in a :class:`~repro.api.report
.RunReport`. The redesign's performance claim is *absence of cost*:
the front door adds accounting (policy resolution, step/trace deltas,
provenance) around exactly the legacy code path, so its wall-clock
must sit within **2%** of the direct entry-point call on the PR 4
hot paths. This bench pins that on both flagship workloads:

* **fused ICP** at ``n = 2000`` — the PR 3 multiplexed path, driven
  once through :func:`~repro.core.intra_cluster
  .intra_cluster_propagation` directly and once through
  ``api.run("icp", policy=fused)``;
* **streamed EED** at ``n = 10^5`` (CI scale; ``--n`` opts down) —
  the PR 4 out-of-core path under the same 64 MiB budget as
  ``BENCH_PR4.json``, legacy vs front door.

Both sides run best-of-``repeats`` with bit-identity asserted between
them (identical seeds must give identical results through either
door), so the gated ratio compares the same statistic and host noise
cannot bias it. Rows persist to ``BENCH_PR5.json`` in
:meth:`~repro.api.report.RunReport.row` form — the benchmark artifact
is itself front-door shaped now — with memory peaks taken in a
separate traced pass (tracemalloc taxes allocations; never time and
trace in one run).

Run directly::

    PYTHONPATH=src python benchmarks/bench_p5_api.py --n 100000

or through ``benchmarks/run_perf_smoke.py`` (``--skip-p5`` /
``--p5-n`` to opt down).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR5.json"

#: Acceptance ceiling from the PR 5 issue: the front door's best wall
#: time may exceed the direct entry point's by at most this factor.
OVERHEAD_CEILING = 1.02

#: The PR 4 streaming budget, unchanged (BENCH_PR4.json comparability).
MEM_BUDGET = 64 << 20

#: Adaptive sampling cap: per-run host jitter on these workloads is
#: several times the 2% ceiling, so both sides sample until their
#: *minima* converge under the ceiling (the statistic being gated is a
#: floor; the true front-door overhead is fractions of a percent, so
#: early-stopping on convergence cannot mask a real > 2% regression —
#: a genuine regression keeps the min-ratio above the ceiling at any
#: sample count and exhausts the cap instead). The cap is sized for
#: noisy shared CI runners: 24 pairs of the streamed-EED side is
#: ~90 s, well inside the job's wall-clock cap.
MAX_REPEATS = 24


def _interleaved_best(
    run_legacy, run_api, min_repeats: int
) -> tuple[float, float, int]:
    """Best-of-k wall times, interleaved and adaptively extended.

    Alternates the two runners (so drift cannot bias one side), takes
    at least ``min_repeats`` samples of each, and keeps sampling while
    the min-ratio sits above :data:`OVERHEAD_CEILING` up to
    :data:`MAX_REPEATS` — converging to the floor when the paths truly
    cost the same, failing honestly when they do not. Returns
    ``(legacy_best, api_best, samples)``.
    """
    legacy_best = api_best = float("inf")
    samples = 0
    while samples < min_repeats or (
        api_best / legacy_best > OVERHEAD_CEILING
        and samples < MAX_REPEATS
    ):
        t0 = time.perf_counter()
        run_legacy()
        legacy_best = min(legacy_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_api()
        api_best = min(api_best, time.perf_counter() - t0)
        samples += 1
    return legacy_best, api_best, samples


def _udg(n: int, side: float, seed: int):
    """The benchmark UDG family (matches bench_p3/bench_p4 fixtures)."""
    from repro import graphs

    return graphs.random_udg(
        n, side, np.random.default_rng(seed), connected=False
    )


def bench_fused_icp(
    n: int = 2000, seed: int = 404, ell: int = 6, repeats: int = 5
) -> dict:
    """Fused ICP: direct entry point vs ``api.run`` (bit-identical)."""
    import repro.api as api
    from repro.core import build_icp_inputs, intra_cluster_propagation
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 31.0) ** 0.5, seed)  # avg degree ~90 at n = 2000
    policy = api.ExecutionPolicy(engine="fused", trace="cheap")
    config = api.ICPConfig(beta=0.3, ell=ell, sources={0: 9})

    def run_legacy():
        # The exact sequence api.run executes, called directly — the
        # timer covers the whole sequence (setup pipeline included) on
        # both sides, so the ratio isolates pure front-door overhead.
        setup = np.random.default_rng(seed + 2)
        net = RadioNetwork(g, trace=CheapTrace())
        clustering, schedule, knowledge = build_icp_inputs(
            g, setup, beta=0.3, sources={0: 9}
        )
        return intra_cluster_propagation(
            net, clustering, schedule, knowledge, ell, setup,
            policy=policy,
        )

    def run_api():
        return api.run(
            "icp", g, seed=seed + 2, config=config, policy=policy
        )

    # One untimed warmup each (context caches, scipy imports), then
    # interleaved adaptive best-of sampling (see _interleaved_best).
    legacy, report = run_legacy(), run_api()
    assert (report.result.knowledge == legacy.knowledge).all()
    assert report.result.steps == legacy.steps
    legacy_best, api_best, samples = _interleaved_best(
        run_legacy, run_api, repeats
    )
    row = report.row()
    row.update(
        {
            "workload": "fused ICP phase via api.run vs direct call",
            "n": n,
            "edges": g.number_of_edges(),
            "ell": ell,
            "icp_steps": legacy.steps,
            "legacy_best_s": legacy_best,
            "api_best_s": api_best,
            "api_over_legacy": api_best / legacy_best,
            "samples": samples,
            "ceiling": OVERHEAD_CEILING,
            "pr3_reference": "BENCH_PR3.json fused_icp.fused_s",
        }
    )
    return row


def bench_streamed_eed(
    n: int = 100000,
    seed: int = 902,
    C: int = 2,
    mem_budget: int = MEM_BUDGET,
    repeats: int = 4,
) -> dict:
    """Streamed EED at scale: direct entry point vs ``api.run``."""
    import repro.api as api
    from repro.core.effective_degree import estimate_effective_degree
    from repro.radio import CheapTrace, RadioNetwork

    side = float(np.sqrt(n * np.pi / 9.0))
    g = _udg(n, side, seed)
    net = RadioNetwork(g, trace=CheapTrace())
    p = np.full(n, 0.5)
    active = np.ones(n, dtype=bool)
    policy = api.ExecutionPolicy(mem_budget=mem_budget, trace="cheap")
    config = api.EEDConfig(p=0.5, C=C)

    def run_legacy():
        return estimate_effective_degree(
            net, p, active, np.random.default_rng(seed + 1), C=C,
            policy=policy,
        )

    def run_api():
        return api.run(
            "eed", net, rng=np.random.default_rng(seed + 1),
            config=config, policy=policy,
        )

    # One untimed warmup each, then interleaved adaptive best-of
    # sampling (see _interleaved_best).
    legacy, report = run_legacy(), run_api()
    assert (report.result.counts == legacy.counts).all()
    legacy_best, api_best, samples = _interleaved_best(
        run_legacy, run_api, repeats
    )

    # Separate traced pass for the peak (never time under tracemalloc).
    traced = api.run(
        "eed", net, rng=np.random.default_rng(seed + 1),
        config=config, policy=policy, measure_memory=True,
    )

    row = report.row()
    row.update(
        {
            "workload": "streamed EED block at scale via api.run",
            "n": n,
            "edges": g.number_of_edges(),
            "C": C,
            "eed_steps": report.steps,
            "high_count": int(report.result.high.sum()),
            "legacy_best_s": legacy_best,
            "api_best_s": api_best,
            "api_over_legacy": api_best / legacy_best,
            "samples": samples,
            "ceiling": OVERHEAD_CEILING,
            "peak_mem_bytes": int(traced.peak_mem_bytes),
            "pr4_reference": "BENCH_PR4.json streamed_eed.wall_s",
        }
    )
    return row


def run_bench(n: int = 100000, mem_budget: int = MEM_BUDGET) -> dict:
    """Run the PR 5 benchmarks and assemble the persistable record."""
    icp = bench_fused_icp()
    eed = bench_streamed_eed(n=n, mem_budget=mem_budget)
    return {
        "bench": "p5_api",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "fused_icp": icp,
        "streamed_eed": eed,
        "passes_floors": bool(
            icp["api_over_legacy"] <= icp["ceiling"]
            and eed["api_over_legacy"] <= eed["ceiling"]
        ),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Run, print, persist; exit nonzero if an overhead ceiling breaks."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=100000,
        help="streamed-EED scale (default 100000)",
    )
    parser.add_argument(
        "--mem-budget", type=int, default=MEM_BUDGET,
        help="streaming budget in bytes (default 64 MiB)",
    )
    args = parser.parse_args(argv)
    results = run_bench(n=args.n, mem_budget=args.mem_budget)
    for key in ("fused_icp", "streamed_eed"):
        r = results[key]
        print(
            f"{key:12s} n={r['n']}: api {r['api_best_s']:.3f}s vs "
            f"legacy {r['legacy_best_s']:.3f}s = "
            f"{r['api_over_legacy']:.4f}x (ceiling {r['ceiling']}x)"
        )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
