"""P3 — plan/commit IR: fused ICP and density-adaptive delivery (PR 3).

Two workloads the PR 3 issue names, both bit-identity-asserted inside
the bench before any timing is reported:

* **Fused ICP** at ``n >= 2000`` on a dense UDG: the window-multiplexing
  combinator (``repro.engine.mux.multiplex``) zips the adaptive slot
  passes with sweep-wide Decay-background windows, replacing one dense
  matvec per multiplexed step with narrow gather-kernel window products.
  Measured against both the step-wise ``TimeMultiplexer`` reference and
  the decision-point engine path. Acceptance floor: **3x** vs the
  reference.

* **Dense-window delivery** on the EstimateEffectiveDegree ``p ~ 0.5``
  regime (dense UDG, all nodes active at desire level 0.5): the block's
  low density levels light up most (listener, step) pairs, which is
  where ``deliver_window``'s sparse product degrades into COO
  materialization. Recorded: the full block under ``delivery="auto"``
  (per-row density routing) vs forced-``sparse``, floor **1.05x**
  (measured ~1.3x; only the ladder's low levels are dense, so the
  block-level margin is structurally thin and the floor asserts
  strictly-faster with noise headroom), and a single level-0 window
  forced-``dense`` vs forced-``sparse``, floor **1.5x** (measured
  ~3.5x).

Results persist to ``BENCH_PR3.json``. Run directly::

    PYTHONPATH=src python benchmarks/bench_p3_engine.py

or through ``benchmarks/run_perf_smoke.py`` (tier-1 suite + P1 + P2 +
this).
"""

from __future__ import annotations

import json
import pathlib
import platform
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR3.json"

#: Acceptance floors from the PR 3 issue (CI margins are wide: the
#: measured fused-ICP speedup is ~3x the floor on a quiet host).
FUSED_ICP_FLOOR = 3.0
DENSE_BLOCK_FLOOR = 1.05
DENSE_WINDOW_FLOOR = 1.5


def _udg(n: int, side: float, seed: int):
    from repro import graphs

    return graphs.random_udg(n, side, np.random.default_rng(seed))


def bench_fused_icp(n: int = 2000, seed: int = 404, ell: int = 6) -> dict:
    """Fused (multiplexed) ICP vs the step-wise reference and the
    decision-point engine path, all three bit-identity-asserted."""
    from repro.core import build_icp_inputs, intra_cluster_propagation
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 31.0) ** 0.5, seed)  # avg degree ~90 at n = 2000
    clustering, schedule, knowledge = build_icp_inputs(
        g, np.random.default_rng(seed + 1), beta=0.3, sources={0: 9}
    )

    timings: dict[str, float] = {}
    results = {}
    # Best-of-2 on every engine: the gated ratios compare the same
    # statistic on each side, so host noise cannot bias them.
    for engine in ("reference", "windowed", "fused"):
        best = float("inf")
        for _ in range(2):
            net = RadioNetwork(g, trace=CheapTrace())
            t0 = time.perf_counter()
            res = intra_cluster_propagation(
                net, clustering, schedule, knowledge, ell,
                np.random.default_rng(seed + 2), engine=engine,
            )
            best = min(best, time.perf_counter() - t0)
        timings[engine] = best
        results[engine] = res

    ref = results["reference"]
    for engine in ("windowed", "fused"):
        assert (results[engine].knowledge == ref.knowledge).all()
        assert results[engine].steps == ref.steps
    return {
        "workload": (
            "Intra-Cluster Propagation with Decay background, "
            "multiplexed (fused) vs decision-point vs step-wise"
        ),
        "n": n,
        "edges": g.number_of_edges(),
        "ell": ell,
        "steps": ref.steps,
        "slot_colors": schedule.n_colors,
        "reference_s": timings["reference"],
        "windowed_s": timings["windowed"],
        "fused_s": timings["fused"],
        "speedup": timings["reference"] / timings["fused"],
        "speedup_vs_windowed": timings["windowed"] / timings["fused"],
        "floor": FUSED_ICP_FLOOR,
    }


def bench_dense_window(n: int = 2000, seed: int = 505) -> dict:
    """The EstimateEffectiveDegree ``p ~ 0.5`` dense regime: auto (per-
    row density routing) vs forced-sparse over the whole block, plus a
    single level-0 window forced-dense vs forced-sparse."""
    from repro.core import (
        estimate_effective_degree,
    )
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 80.0) ** 0.5, seed)  # avg degree ~200 at n = 2000
    p = np.full(n, 0.5)
    active = np.ones(n, dtype=bool)

    block: dict[str, float] = {}
    counts = {}
    for delivery in ("sparse", "auto", "dense"):
        best = float("inf")
        # Best-of-3: this ratio has the thinnest structural margin of
        # the gated floors, so it gets the most noise suppression.
        for _ in range(3):
            net = RadioNetwork(g, trace=CheapTrace())
            t0 = time.perf_counter()
            res = estimate_effective_degree(
                net, p, active, np.random.default_rng(seed + 1),
                C=24, delivery=delivery,
            )
            best = min(best, time.perf_counter() - t0)
        block[delivery] = best
        counts[delivery] = res.counts
    assert (counts["auto"] == counts["sparse"]).all()
    assert (counts["dense"] == counts["sparse"]).all()

    # One pure level-0 window: every active node transmits with
    # probability 0.5 — the regime the ROADMAP flagged.
    masks = np.random.default_rng(seed + 2).random((256, n)) < 0.5
    single: dict[str, float] = {}
    outs = {}
    for mode in ("sparse", "dense"):
        best = float("inf")
        for _ in range(3):
            net = RadioNetwork(g, trace=CheapTrace())
            t0 = time.perf_counter()
            out = net.deliver_window(masks, mode=mode)
            best = min(best, time.perf_counter() - t0)
        single[mode] = best
        outs[mode] = out
    assert (outs["sparse"] == outs["dense"]).all()

    return {
        "workload": (
            "EstimateEffectiveDegree p=0.5 dense regime: density-"
            "adaptive window delivery"
        ),
        "n": n,
        "edges": g.number_of_edges(),
        "block_sparse_s": block["sparse"],
        "block_auto_s": block["auto"],
        "block_dense_s": block["dense"],
        "block_speedup": block["sparse"] / block["auto"],
        "block_floor": DENSE_BLOCK_FLOOR,
        "window_sparse_s": single["sparse"],
        "window_dense_s": single["dense"],
        "window_speedup": single["sparse"] / single["dense"],
        "window_floor": DENSE_WINDOW_FLOOR,
    }


def peak_memory(n: int = 2000, seed: int = 404, ell: int = 6) -> int:
    """Tracemalloc peak of the fused (multiplexed) ICP workload.

    A separate traced pass: tracing taxes small allocations heavily
    enough to distort the floor-gated timing ratios, so the timed
    benches run untraced and this re-execution records the memory side
    of the trajectory.
    """
    from repro.analysis.experiments import measure_peak
    from repro.core import build_icp_inputs, intra_cluster_propagation
    from repro.radio import CheapTrace, RadioNetwork

    g = _udg(n, (n / 31.0) ** 0.5, seed)
    clustering, schedule, knowledge = build_icp_inputs(
        g, np.random.default_rng(seed + 1), beta=0.3, sources={0: 9}
    )
    net = RadioNetwork(g, trace=CheapTrace())
    _, peak = measure_peak(
        lambda: intra_cluster_propagation(
            net, clustering, schedule, knowledge, ell,
            np.random.default_rng(seed + 2), engine="fused",
        )
    )
    return int(peak)


def run_bench(n: int = 2000) -> dict:
    """Run the PR 3 benchmarks and assemble the persistable record.

    ``peak_mem_bytes`` (tracemalloc over the fused ICP workload, numpy
    buffers included) rides alongside the wall times so the
    ``BENCH_*.json`` trajectory tracks memory as well as speed.
    """
    icp = bench_fused_icp(n=n)
    dense = bench_dense_window(n=n)
    return {
        "bench": "p3_engine",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "peak_mem_bytes": peak_memory(n=n),
        "fused_icp": icp,
        "dense_window": dense,
        "passes_floors": bool(
            icp["speedup"] >= icp["floor"]
            and dense["block_speedup"] >= dense["block_floor"]
            and dense["window_speedup"] >= dense["window_floor"]
        ),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main() -> int:
    """Run, print, persist; exit nonzero if a speedup floor is missed."""
    results = run_bench()
    icp = results["fused_icp"]
    print(
        f"fused ICP          n={icp['n']}: {icp['reference_s']:.2f}s -> "
        f"{icp['fused_s']:.2f}s = {icp['speedup']:.1f}x "
        f"(floor {icp['floor']}x; vs windowed "
        f"{icp['speedup_vs_windowed']:.1f}x)"
    )
    dense = results["dense_window"]
    print(
        f"dense EED block    n={dense['n']}: "
        f"{dense['block_sparse_s']:.2f}s -> {dense['block_auto_s']:.2f}s "
        f"= {dense['block_speedup']:.2f}x (floor {dense['block_floor']}x)"
    )
    print(
        f"dense p=0.5 window n={dense['n']}: "
        f"{dense['window_sparse_s'] * 1e3:.0f}ms -> "
        f"{dense['window_dense_s'] * 1e3:.0f}ms "
        f"= {dense['window_speedup']:.2f}x (floor {dense['window_floor']}x)"
    )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
