"""E6 — Theorems 6-7 + Corollary 9: the headline broadcast comparison.

Two regimes, as DESIGN.md's experiment index specifies:

1. growth-bounded (thin UDG grids, alpha = poly(D)): sweep D and
   compare our propagation rounds (claim: ~linear in D) against the [7]
   baseline (same pipeline, all-nodes centers, log_D(n) phases) and the
   packet-level BGI broadcast (Theta(D log n)); analytic bounds for
   Czumaj-Rytter included as columns.

2. general graphs (clique chains, alpha = Theta(D) << n): the regime
   where the independence-number parametrization strictly beats the
   n-parametrization of [7].

'Who wins, by roughly what factor' is the reproduction target, not the
absolute constants.
"""

from __future__ import annotations

import math

import numpy as np

from repro import baselines, graphs
from repro.analysis import TextTable
from repro.core import CompeteConfig, broadcast
from repro.radio import RadioNetwork

from conftest import save_table

TRIALS = 3


def _mean_propagation(g, rng, mode: str) -> float:
    values = []
    for _ in range(TRIALS):
        result = broadcast(
            g, 0, rng, config=CompeteConfig(centers_mode=mode)
        )
        values.append(result.propagation_rounds)
    return float(np.mean(values))


def _mean_bgi(g, rng) -> float:
    values = []
    for _ in range(TRIALS):
        net = RadioNetwork(g)
        values.append(baselines.bgi_broadcast(net, 0, rng).steps)
    return float(np.mean(values))


def run_growth_bounded(rng) -> TextTable:
    table = TextTable(
        [
            "D",
            "n",
            "alpha",
            "ours",
            "CD21",
            "BGI",
            "ours/D",
            "BGI/(D log n)",
            "CR bound",
        ],
        title=(
            "E6a: broadcast on thin UDG grids, growth-bounded regime "
            "(claim: ours/D flat; BGI pays the extra log n)"
        ),
    )
    for cols in (15, 30, 45, 60):
        g = graphs.grid_udg(3, cols, rng)
        n = g.number_of_nodes()
        d = graphs.diameter(g)
        alpha = graphs.exact_independence_number(g)
        ours = _mean_propagation(g, rng, "mis")
        cd21 = _mean_propagation(g, rng, "all")
        bgi = _mean_bgi(g, rng)
        table.add_row(
            [
                d,
                n,
                alpha,
                ours,
                cd21,
                bgi,
                ours / d,
                bgi / (d * math.log2(n)),
                baselines.czumaj_rytter_bound(n, d),
            ]
        )
    return table


def run_general_graphs(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "n",
            "D",
            "alpha",
            "ours",
            "CD21",
            "ours/CD21",
            "log_D(alpha)",
            "log_D(n)",
        ],
        title=(
            "E6b: broadcast on general graphs (clique chains: alpha << n; "
            "claim: ours <= CD21, gap tracks log_D(n)/log_D(alpha))"
        ),
    )
    for chains, size in ((6, 12), (10, 12), (14, 12)):
        g = graphs.clique_chain(chains, size)
        n = g.number_of_nodes()
        d = graphs.diameter(g)
        alpha = graphs.exact_independence_number(g)
        ours = _mean_propagation(g, rng, "mis")
        cd21 = _mean_propagation(g, rng, "all")
        table.add_row(
            [
                f"chain({chains},{size})",
                n,
                d,
                alpha,
                ours,
                cd21,
                ours / cd21 if cd21 else float("nan"),
                graphs.log_base_d(alpha, d),
                graphs.log_base_d(n, d),
            ]
        )
    # A star: alpha ~ n, the regime where the parametrization cannot help
    # (and must not hurt).
    g = graphs.star(150)
    ours = _mean_propagation(g, rng, "mis")
    cd21 = _mean_propagation(g, rng, "all")
    table.add_row(
        ["star(150)", 150, 2, 149, ours, cd21, ours / cd21, 1.0, 1.0]
    )
    return table


def test_e6_broadcast_growth_bounded(benchmark, results_dir):
    rng = np.random.default_rng(6001)
    g = graphs.grid_udg(3, 30, rng)

    benchmark.pedantic(
        lambda: broadcast(g, 0, np.random.default_rng(5)),
        rounds=3,
        iterations=1,
    )

    table = run_growth_bounded(np.random.default_rng(6002))
    save_table(results_dir, "e6a_broadcast_growth_bounded", table.render())


def test_e6_broadcast_general(benchmark, results_dir):
    rng = np.random.default_rng(6003)
    g = graphs.clique_chain(8, 10)

    benchmark.pedantic(
        lambda: broadcast(g, 0, np.random.default_rng(5)),
        rounds=3,
        iterations=1,
    )

    table = run_general_graphs(np.random.default_rng(6004))
    save_table(results_dir, "e6b_broadcast_general", table.render())
