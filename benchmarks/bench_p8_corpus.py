"""P8 — the graph corpus at scale: cell-grid CSR generation, the mmap
store, and zero-copy shared-memory trial workers.

PR 8 made the graph *input* side scale to ``n = 10^6``: array-native
cell-grid UDG generation emitting ``(indptr, indices)`` directly
(bit-compatible with the networkx reference generators), a
content-digest-keyed on-disk format loaded zero-copy via
``np.load(mmap_mode="r")``, and pooled trials that publish the CSR
slabs to ``multiprocessing.shared_memory`` once instead of pickling
the graph into every worker. Four claims to pin:

* **Bit-compatibility first.** The cell-grid generator consumes the
  same rng stream and emits the same edge set as
  ``graphs.udg_from_points`` / ``graphs.random_udg``, and a stored
  entry mmap-loads into a run bit-identical (result, steps, trace,
  final rng state) to the networkx twin. Gates everything else.
* **Generation pays.** ``udg_csr`` beats ``udg_from_points`` on the
  same points by at least **10x** at the benchmark scale.
* **Loading is metadata-only.** An mmap load stays under **250 ms**
  whatever the entry size — nothing is read until pages are touched.
* **Workers are zero-copy.** The per-worker payload is a segment
  handle of a few hundred bytes (not the pickled arrays), pooled
  trials match serial ones bit-for-bit, and per-worker RSS stays flat
  as the pool grows.

Rows persist to ``BENCH_PR8.json``. Run directly::

    PYTHONPATH=src python benchmarks/bench_p8_corpus.py --n 100000

or through ``benchmarks/run_perf_smoke.py`` (``--skip-p8`` /
``--p8-n`` to opt down; CI uses ``--p8-n 30000``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import pickle
import platform
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR8.json"

#: ``udg_csr`` over ``udg_from_points`` on identical points (the
#: ISSUE 8 acceptance floor at n = 10^5; holds from ~2*10^4 up).
GEN_SPEEDUP_FLOOR = 10.0

#: Wall-clock ceiling for one mmap load — metadata plus array headers,
#: independent of graph size.
LOAD_CEILING_S = 0.25

#: A worker payload (the shm handle) must be at least this many times
#: smaller than pickling the CSR arrays themselves would be.
HANDLE_RATIO_FLOOR = 100.0

#: Largest tolerated growth of per-worker RSS from a 1-worker pool to
#: the widest measured pool (flat = the graph is genuinely shared).
RSS_FLAT_CEILING = 1.5

#: Pool widths the RSS-flatness leg sweeps.
RSS_WORKER_COUNTS = (1, 2, 4)


def _points(n: int, seed: int) -> np.ndarray:
    side = float(np.sqrt(n * np.pi / 9.0))
    return np.random.default_rng(seed).uniform(0, side, size=(n, 2))


def _worker_rss_probe(rng: np.random.Generator, graph) -> float:
    """Trial body for the RSS-flatness leg: touch the whole graph, then
    report this worker's resident set (kB from /proc/self/status)."""
    total = float(graph.indices.sum(dtype=np.int64)) + float(rng.random())
    status = pathlib.Path("/proc/self/status").read_text()
    for line in status.splitlines():
        if line.startswith("VmRSS:"):
            return float(line.split()[1]) + 0.0 * total
    return -1.0  # pragma: no cover - non-Linux


def check_bit_identity(n: int = 1500, seed: int = 81) -> dict:
    """Generation parity + store round-trip parity, exactly."""
    import repro.api as api
    from repro import corpus, graphs

    # Same rng stream, same edge set as the reference generator.
    side = float(np.sqrt(n * np.pi / 9.0))
    rng_a, rng_b = np.random.default_rng(seed), np.random.default_rng(seed)
    g_csr = corpus.random_udg_csr(
        n, side, rng_a, connected=False
    )
    g_ref = graphs.random_udg(n, side, rng_b, connected=False)
    assert rng_a.bit_generator.state == rng_b.bit_generator.state
    indptr, indices = g_csr.csr_arrays()
    ref_edges = {(min(u, v), max(u, v)) for u, v in g_ref.edges}
    csr_edges = {
        (u, int(v))
        for u in range(n)
        for v in indices[indptr[u]:indptr[u + 1]]
        if u < v
    }
    assert csr_edges == ref_edges

    # Persist, mmap-load, run: bit-identical to the networkx twin.
    with tempfile.TemporaryDirectory() as tmp:
        entry = pathlib.Path(tmp) / "entry"
        digest = corpus.save_graph(g_csr, entry)
        loaded = corpus.load_graph(entry)
        rng_c, rng_d = (
            np.random.default_rng(seed + 1),
            np.random.default_rng(seed + 1),
        )
        on_corpus = api.run("mis", corpus=loaded, rng=rng_c)
        on_nx = api.run("mis", g_ref, rng=rng_d)
        assert on_corpus.result == on_nx.result
        assert on_corpus.steps == on_nx.steps
        assert on_corpus.trace == on_nx.trace
        assert rng_c.bit_generator.state == rng_d.bit_generator.state
        assert on_corpus.provenance["corpus"]["digest"] == digest
    return {
        "n": n,
        "edges": len(ref_edges),
        "mis_size": on_nx.result.size,
        "steps": on_nx.steps,
        "identical": True,
    }


def bench_generation(n: int, seed: int = 82) -> dict:
    """``udg_csr`` vs ``udg_from_points`` on identical points."""
    from repro.corpus.generate import udg_csr
    from repro.graphs import udg_from_points

    points = _points(n, seed)

    t0 = time.perf_counter()
    ref = udg_from_points(points, radius=1.0)
    ref_s = time.perf_counter() - t0

    csr_s = float("inf")
    for _ in range(3):  # best-of-3: cold-page noise on small containers
        t0 = time.perf_counter()
        indptr, indices = udg_csr(points, radius=1.0)
        csr_s = min(csr_s, time.perf_counter() - t0)

    assert len(indices) // 2 == ref.number_of_edges()
    return {
        "workload": "UDG from fixed points: cell-grid CSR vs "
        "cKDTree + per-edge networkx",
        "n": n,
        "edges": int(len(indices) // 2),
        "reference_s": ref_s,
        "csr_s": csr_s,
        "speedup": ref_s / csr_s,
        "speedup_floor": GEN_SPEEDUP_FLOOR,
    }


def bench_store(n: int, seed: int = 83) -> dict:
    """Save + mmap-load wall clock at the benchmark scale."""
    from repro import corpus

    side = float(np.sqrt(n * np.pi / 9.0))
    g = corpus.random_udg_csr(
        n, side, np.random.default_rng(seed), connected=False
    )
    with tempfile.TemporaryDirectory() as tmp:
        entry = pathlib.Path(tmp) / "entry"
        t0 = time.perf_counter()
        corpus.save_graph(g, entry)
        save_s = time.perf_counter() - t0

        load_s = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            loaded = corpus.load_graph(entry)
            load_s = min(load_s, time.perf_counter() - t0)
        entry_bytes = sum(
            f.stat().st_size for f in entry.iterdir() if f.is_file()
        )
        assert loaded.number_of_nodes() == n
    return {
        "n": n,
        "edges": g.number_of_edges(),
        "entry_bytes": entry_bytes,
        "save_s": save_s,
        "mmap_load_s": load_s,
        "load_ceiling_s": LOAD_CEILING_S,
    }


def bench_shm(n: int, seed: int = 84, trials: int = 4) -> dict:
    """Zero-copy fan-out: tiny handles, flat RSS, serial bit-identity."""
    from repro import corpus
    from repro.analysis.experiments import (
        run_report_trials,
        run_trials_parallel,
    )
    from repro.corpus.shm import SharedGraph

    side = float(np.sqrt(n * np.pi / 9.0))
    g = corpus.random_udg_csr(
        n, side, np.random.default_rng(seed), connected=False
    )
    with SharedGraph.publish(g) as shared:
        handle_bytes = len(pickle.dumps(shared.handle))
    array_bytes = len(pickle.dumps((g.indptr, g.indices, g.positions)))

    rss_by_workers = {}
    for workers in RSS_WORKER_COUNTS:
        stats = run_trials_parallel(
            _worker_rss_probe,
            max(trials, workers),
            seed=seed,
            processes=workers,
            corpus=g,
        )
        rss_by_workers[workers] = stats.maximum
    rss_measured = all(v > 0 for v in rss_by_workers.values())
    rss_ratio = (
        rss_by_workers[max(RSS_WORKER_COUNTS)]
        / rss_by_workers[min(RSS_WORKER_COUNTS)]
        if rss_measured
        else None
    )

    # Pooled front-door trials equal serial ones, outcome for outcome
    # (a small-n leg: this is a semantics gate, not a timing).
    g_small = corpus.random_udg_csr(
        200, side=8.0, rng=np.random.default_rng(seed + 1),
        connected=False,
    )
    pooled = run_report_trials(
        "decay", n_trials=3, seed=seed, processes=2, corpus=g_small
    )
    serial = run_report_trials(
        "decay", n_trials=3, seed=seed, processes=1, corpus=g_small
    )
    pool_identical = all(
        a.result == b.result and a.steps == b.steps and a.trace == b.trace
        for a, b in zip(pooled, serial)
    )
    return {
        "n": n,
        "handle_bytes": handle_bytes,
        "array_pickle_bytes": array_bytes,
        "handle_ratio": array_bytes / handle_bytes,
        "handle_ratio_floor": HANDLE_RATIO_FLOOR,
        "worker_rss_kb": rss_by_workers,
        "rss_measured": rss_measured,
        "rss_ratio": rss_ratio,
        "rss_flat_ceiling": RSS_FLAT_CEILING,
        "pool_matches_serial": pool_identical,
    }


def run_bench(n: int = 100000, identity_n: int = 1500) -> dict:
    """Run the PR 8 benchmarks and assemble the persistable record."""
    identity = check_bit_identity(n=identity_n)
    generation = bench_generation(n=n)
    store = bench_store(n=n)
    shm = bench_shm(n=n)
    passes = (
        identity["identical"]
        and generation["speedup"] >= generation["speedup_floor"]
        and store["mmap_load_s"] <= store["load_ceiling_s"]
        and shm["handle_ratio"] >= shm["handle_ratio_floor"]
        and shm["pool_matches_serial"]
    )
    if shm["rss_ratio"] is not None:
        passes = passes and shm["rss_ratio"] <= shm["rss_flat_ceiling"]
    return {
        "bench": "p8_corpus",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "bit_identity": identity,
        "generation": generation,
        "store": store,
        "shm": shm,
        "passes_floors": bool(passes),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Run, print, persist; exit nonzero if a floor breaks."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=100000,
        help="benchmark scale (acceptance assumes 100000; CI uses "
        "30000; 1000000 exercises the full corpus envelope)",
    )
    parser.add_argument(
        "--identity-n", type=int, default=1500,
        help="bit-identity check scale (default 1500)",
    )
    args = parser.parse_args(argv)
    results = run_bench(n=args.n, identity_n=args.identity_n)
    print(json.dumps(results, indent=2))
    write_results(results)
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
