"""E3 — Claim 10: O(log n) Decay iterations inform all neighbors whp.

Measures, as a function of the iteration count, the probability that
*every* node with a neighbor in the transmitting set hears at least one
clean transmission — on the three contention regimes that matter: a
star's hub facing all its leaves, a full clique, and a random G(n,p).
The claim: per-sweep success is Omega(1), so failure decays
geometrically in the iteration count.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable, success_rate
from repro.core.decay import run_decay
from repro.radio import RadioNetwork

from conftest import save_table


def _trial(g, rng, iterations: int) -> bool:
    """One Decay block; success = every dominated node heard."""
    net = RadioNetwork(g)
    active = np.ones(net.n, dtype=bool)
    result = run_decay(net, active, rng, iterations=iterations)
    # Every node has a neighbor in S (S = everyone), so all must hear.
    return bool(result.heard.all())


def run_experiment(rng) -> TextTable:
    table = TextTable(
        ["graph", "iterations", "success rate", "trials"],
        title=(
            "E3: Decay amplification (claim: failure decays geometrically "
            "with iterations)"
        ),
    )
    instances = {
        "star(33)": graphs.star(33),
        "clique(32)": graphs.clique(32),
        "gnp(48, 0.2)": graphs.connected_gnp(48, 0.2, rng),
    }
    trials = 20
    for name, g in instances.items():
        for iterations in (1, 2, 4, 8, 16):
            outcomes = [
                _trial(g, rng, iterations) for _ in range(trials)
            ]
            table.add_row(
                [name, iterations, success_rate(outcomes), trials]
            )
    return table


def test_e3_decay(benchmark, results_dir):
    rng = np.random.default_rng(3001)
    g = graphs.clique(32)

    benchmark.pedantic(
        lambda: _trial(g, np.random.default_rng(5), 8),
        rounds=5,
        iterations=1,
    )

    table = run_experiment(np.random.default_rng(3002))
    save_table(results_dir, "e3_decay", table.render())
