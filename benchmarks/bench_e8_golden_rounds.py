"""E8 — Lemmas 12-13: golden-round dynamics of Radio MIS.

Lemma 12: within O(log n) rounds, every node either leaves the graph or
accumulates Theta(log n) golden rounds. Lemma 13: each golden round
removes the node with probability >= 1/8004 (so in practice the graph
empties much faster). This experiment runs instrumented Radio MIS and
reports (a) rounds until the graph empties vs the log n budget, (b) the
distribution of per-node golden-round counts among nodes while they
lived, and (c) the empirical per-golden-round removal rate — all of
which should comfortably dominate the paper's worst-case constants.
"""

from __future__ import annotations

import math

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.core import MISConfig, compute_mis
from repro.radio import RadioNetwork

from conftest import save_table

CONFIG = MISConfig(oracle_degree=True, record_golden=True)


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "graph",
            "n",
            "rounds to empty",
            "log2 n",
            "mean golden/node",
            "max golden/node",
            "removal ratio",
        ],
        title=(
            "E8: golden-round dynamics (claims: empties in O(log n) "
            "rounds; removal probability per golden round >= 1/8004 — "
            "measured ratios are far above that floor)"
        ),
    )
    instances = {
        "gnp(120,.05)": graphs.connected_gnp(120, 0.05, rng),
        "udg(150)": graphs.random_udg(150, 6.0, rng),
        "clustered-udg": graphs.clustered_udg(4, 30, rng),
        "clique(128)": graphs.clique(128),
        "tree(128)": graphs.random_tree(128, rng),
    }
    for name, g in instances.items():
        n = g.number_of_nodes()
        net = RadioNetwork(g)
        result = compute_mis(net, rng, CONFIG)
        golden_total = result.golden_type1 + result.golden_type2
        # Removal ratio: nodes removed per golden round experienced
        # (every node is removed exactly once in a complete run).
        total_golden = int(golden_total.sum())
        ratio = n / total_golden if total_golden else float("inf")
        table.add_row(
            [
                name,
                n,
                result.rounds_used,
                math.log2(n),
                float(golden_total.mean()),
                int(golden_total.max()),
                ratio,
            ]
        )
    return table


def test_e8_golden_rounds(benchmark, results_dir):
    rng = np.random.default_rng(8001)
    g = graphs.random_udg(120, 5.0, rng)

    benchmark.pedantic(
        lambda: compute_mis(
            RadioNetwork(g), np.random.default_rng(5), CONFIG
        ),
        rounds=3,
        iterations=1,
    )

    table = run_experiment(np.random.default_rng(8002))
    save_table(results_dir, "e8_golden_rounds", table.render())
