"""E2 — Lemma 11: EstimateEffectiveDegree's two-sided guarantee.

Builds gadgets with controlled effective degrees (stars whose hub desire
level sets the leaves' d_t, cliques for the high side), runs Algorithm 6
at several values of its constant C, and measures the High/Low error
rates in each of Lemma 11's zones:

* d_t(v) >= 1    -> must return High (whp);
* d_t(v) <= 0.01 -> must return Low (whp);
* in between     -> unconstrained (reported for interest).
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.core import estimate_effective_degree, exact_effective_degree
from repro.radio import RadioNetwork

from conftest import save_table


def _zone_error_rates(rng, C: int, trials: int = 5):
    """Error rates per Lemma 11 zone.

    Workload: a mixed-degree UDG (populates the High zone and the
    unconstrained middle) plus a star whose hub has desire level 0.004
    (every leaf then has ``d_t = 0.004 <= 0.01`` — the Low zone).
    """
    high_err = low_err = high_total = low_total = 0
    for _ in range(trials):
        g = graphs.random_udg(n=60, side=3.0, rng=rng)
        net = RadioNetwork(g)
        p = rng.choice([0.001, 0.25, 0.5], size=net.n)
        active = np.ones(net.n, dtype=bool)
        d = exact_effective_degree(net, p, active)
        result = estimate_effective_degree(net, p, active, rng, C=C)
        must_high = d >= 1.0
        must_low = d <= 0.01
        high_total += int(must_high.sum())
        low_total += int(must_low.sum())
        high_err += int((must_high & ~result.high).sum())
        low_err += int((must_low & result.high).sum())

        star = graphs.star(40)
        net_star = RadioNetwork(star)
        p_star = np.full(net_star.n, 0.004)
        active_star = np.ones(net_star.n, dtype=bool)
        d_star = exact_effective_degree(net_star, p_star, active_star)
        result_star = estimate_effective_degree(
            net_star, p_star, active_star, rng, C=C
        )
        must_low_star = d_star <= 0.01
        low_total += int(must_low_star.sum())
        low_err += int((must_low_star & result_star.high).sum())
    return (
        high_err / max(1, high_total),
        low_err / max(1, low_total),
        high_total,
        low_total,
    )


def run_experiment(rng) -> TextTable:
    table = TextTable(
        [
            "C",
            "High-zone errors",
            "Low-zone errors",
            "high nodes",
            "low nodes",
        ],
        title=(
            "E2: EstimateEffectiveDegree accuracy by constant C "
            "(claim: both error rates -> 0 for large C)"
        ),
    )
    for C in (2, 4, 8, 16, 24):
        high_rate, low_rate, nh, nl = _zone_error_rates(rng, C)
        table.add_row([C, high_rate, low_rate, nh, nl])
    return table


def test_e2_eed_accuracy(benchmark, results_dir):
    rng = np.random.default_rng(2001)
    g = graphs.random_udg(n=60, side=3.0, rng=rng)
    net = RadioNetwork(g)
    p = np.full(net.n, 0.5)
    active = np.ones(net.n, dtype=bool)

    benchmark.pedantic(
        lambda: estimate_effective_degree(
            net, p, active, np.random.default_rng(5), C=8
        ),
        rounds=3,
        iterations=1,
    )

    table = run_experiment(np.random.default_rng(2002))
    save_table(results_dir, "e2_eed_accuracy", table.render())
