"""P10 — the experiment service: hosted campaigns over ``repro.api.run``.

PR 10 added ``repro/service``: a content-addressed RunReport store, a
campaign engine that dedupes against it, and an asyncio HTTP front
end. Three claims to pin, over two campaigns on one corpus graph at
n = 2000:

* **The cache pays.** Resubmitting a completed MIS campaign serves
  every job from the report store — at least **50x** faster than the
  cold run that executed them. MIS is the expensive flagship
  protocol, so execution dominates the cold leg and the ratio
  measures the store, not the protocol's own cost.
* **The store changes nothing.** That MIS campaign's deterministic
  aggregates (the ``steps`` TrialStats) are bit-identical to
  :func:`repro.analysis.experiments.run_report_trials` +
  ``summarize_reports`` over the same ``(protocol, graph, seed)``
  cell — the serial harness baseline.
* **HTTP is thin.** Submitting a cold 200-trial Decay campaign
  through the service (spec over the wire, stream-driven completion)
  costs at most **10%** over driving the campaign engine directly —
  decay trials are cheap, so per-job overhead has nowhere to hide.

Rows persist to ``BENCH_PR10.json``. Run directly::

    PYTHONPATH=src python benchmarks/bench_p10_service.py

or through ``benchmarks/run_perf_smoke.py`` (``--skip-p10`` /
``--p10-trials`` / ``--p10-n`` to opt down).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import tempfile
import time
from datetime import datetime, timezone

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_PR10.json"

#: Resubmission of a completed campaign over its cold execution.
CACHE_FLOOR = 50.0

#: Allowed wall-clock overhead of the HTTP path over driving the
#: campaign engine directly (same spec, fresh store on both sides).
HTTP_OVERHEAD_CEILING = 0.10


def _corpus_graph(root: pathlib.Path, n: int, seed: int):
    """One stored corpus entry at the benchmark scale."""
    from repro.corpus.generate import random_udg_csr
    from repro.corpus.store import CorpusStore

    store = CorpusStore(root / "corpus")
    side = float(np.sqrt(n * np.pi / 9.0))
    graph = random_udg_csr(
        n, side, np.random.default_rng(seed), connected=False
    )
    digest = store.add(graph)
    return store, digest


def bench_cache_and_identity(
    root: pathlib.Path, n: int, trials: int, seed: int = 73
) -> dict:
    """Cold MIS campaign vs resubmission, and the harness-identity gate."""
    from repro.analysis.experiments import (
        run_report_trials,
        summarize_reports,
    )
    from repro.service import CampaignSpec, ReportStore, run_campaign

    corpus, digest = _corpus_graph(root, n, seed)
    spec = CampaignSpec(
        protocol="mis", corpus=(digest,), n_trials=trials, seed=seed
    )
    store_dir = root / "reports"

    t0 = time.perf_counter()
    cold = run_campaign(spec, ReportStore(store_dir), corpus=corpus)
    cold_s = time.perf_counter() - t0
    assert cold.status()["executed"] == trials

    t0 = time.perf_counter()
    warm = run_campaign(spec, ReportStore(store_dir), corpus=corpus)
    warm_s = time.perf_counter() - t0
    warm_status = warm.status()
    assert warm_status["cached"] == trials
    assert warm_status["executed"] == 0

    baseline = summarize_reports(
        run_report_trials(
            "mis", corpus.load(digest), n_trials=trials, seed=seed
        )
    )
    identical = (
        warm.final_summary()["steps"] == baseline["steps"]
        and cold.final_summary()["steps"] == baseline["steps"]
    )

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "protocol": "mis",
        "n": n,
        "trials": trials,
        "cold_s": cold_s,
        "resubmit_s": warm_s,
        "cache_speedup": speedup,
        "cache_floor": CACHE_FLOOR,
        "store_entries": len(ReportStore(store_dir)),
        "aggregates_identical_to_harness": bool(identical),
        "steps_mean": baseline["steps"].mean,
    }


def bench_http_overhead(
    root: pathlib.Path, n: int, trials: int, seed: int = 74, reps: int = 3
) -> dict:
    """The same cold campaign, direct vs through the HTTP service.

    Each side runs ``reps`` times against a fresh report store (so
    every repetition is a genuinely cold campaign) and the best wall
    per side is compared — decay trials are short enough that a single
    rep is noise-dominated on a shared machine.
    """
    from repro.service import (
        CampaignSpec,
        ReportStore,
        ServiceClient,
        run_campaign,
        start_in_thread,
    )

    corpus, digest = _corpus_graph(root, n, seed)
    spec = CampaignSpec(
        protocol="decay", corpus=(digest,), n_trials=trials, seed=seed
    )

    direct_walls = []
    direct = None
    for rep in range(reps):
        t0 = time.perf_counter()
        direct = run_campaign(
            spec, ReportStore(root / f"direct{rep}"), corpus=corpus
        )
        direct_walls.append(time.perf_counter() - t0)
        assert direct.status()["state"] == "completed"
    direct_s = min(direct_walls)

    http_walls = []
    final = None
    for rep in range(reps):
        served_dir = root / f"served{rep}"
        with start_in_thread(served_dir, corpus, workers=1) as handle:
            client = ServiceClient(port=handle.port)
            t0 = time.perf_counter()
            submitted = client.submit(spec)
            final = None
            for snapshot in client.stream(submitted["id"]):
                final = snapshot
            http_walls.append(time.perf_counter() - t0)
        assert final is not None and final["state"] == "completed"
        assert final["executed"] == trials
        assert final["summary"]["steps"]["mean"] == \
            direct.final_summary()["steps"].mean
    http_s = min(http_walls)

    overhead = (http_s - direct_s) / direct_s
    return {
        "protocol": "decay",
        "n": n,
        "trials": trials,
        "direct_s": direct_s,
        "http_s": http_s,
        "http_overhead": overhead,
        "http_overhead_ceiling": HTTP_OVERHEAD_CEILING,
    }


def run_bench(
    n: int = 2000, trials: int = 200, mis_trials: int = 8
) -> dict:
    """Run the PR 10 benchmarks and assemble the persistable record."""
    with tempfile.TemporaryDirectory(prefix="bench-p10-") as tmp:
        root = pathlib.Path(tmp)
        cache = bench_cache_and_identity(root / "cache", n, mis_trials)
        http = bench_http_overhead(root / "http", n, trials)
    passes = (
        cache["cache_speedup"] >= cache["cache_floor"]
        and cache["aggregates_identical_to_harness"]
        and http["http_overhead"] <= http["http_overhead_ceiling"]
    )
    return {
        "bench": "p10_service",
        "generated": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cache": cache,
        "http": http,
        "passes_floors": bool(passes),
    }


def write_results(results: dict, path: pathlib.Path = RESULT_PATH) -> None:
    """Persist the benchmark record as pretty-printed JSON."""
    path.write_text(json.dumps(results, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """Run, print, persist; exit nonzero if a floor breaks."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=2000,
        help="corpus graph size (acceptance pins 2000)",
    )
    parser.add_argument(
        "--trials", type=int, default=200,
        help="decay campaign trial count (acceptance pins 200)",
    )
    parser.add_argument(
        "--mis-trials", type=int, default=8,
        help="MIS campaign trial count for the cache + identity gates",
    )
    args = parser.parse_args(argv)
    results = run_bench(
        n=args.n, trials=args.trials, mis_trials=args.mis_trials
    )
    cache, http = results["cache"], results["http"]
    print(
        f"mis campaign n={cache['n']} x {cache['trials']} trials: cold "
        f"{cache['cold_s']:.2f}s, resubmit {cache['resubmit_s']:.3f}s "
        f"= {cache['cache_speedup']:.0f}x (floor "
        f"{cache['cache_floor']:.0f}x); aggregates == harness: "
        f"{cache['aggregates_identical_to_harness']}"
    )
    print(
        f"http front (decay x {http['trials']}): direct "
        f"{http['direct_s']:.2f}s, served "
        f"{http['http_s']:.2f}s = {http['http_overhead']:+.1%} "
        f"(ceiling {http['http_overhead_ceiling']:.0%})"
    )
    write_results(results)
    print(f"persisted to {RESULT_PATH}")
    return 0 if results["passes_floors"] else 1


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(REPO_ROOT / "src"))
    raise SystemExit(main())
