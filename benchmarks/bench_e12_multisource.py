"""E12 — Theorem 6's multi-source term: Compete(S) with |S| > 1.

Theorem 6 bounds Compete(S) by ``O(D log_D alpha + |S| D^0.125 +
polylog n)`` — the middle term is the cost of candidate messages
contending before the highest one dominates. The round-accounted
pipeline merges knowledge for free (EXPERIMENTS.md known gap 1), but
the packet-level Compete simulates the real collisions between source
clusters. This experiment sweeps |S| at fixed topology and measures
packet steps; the claim's shape: a mild, sublinear-in-|S| increase on
top of the |S|=1 cost (at these diameters ``D^0.125`` is a small
constant, so "mild" is the honest expectation — the term exists but
cannot dominate).

Leader election's |S| = Theta(log n) sits well inside this regime,
which is why Algorithm 3 can afford it.
"""

from __future__ import annotations

import numpy as np

from repro import graphs
from repro.analysis import TextTable
from repro.core import compete_packet
from repro.radio import RadioNetwork

from conftest import save_table

TRIALS = 3


def _mean_steps(g, sources, rng) -> tuple[float, float]:
    steps, icp = [], []
    for _ in range(TRIALS):
        net = RadioNetwork(g)
        result = compete_packet(net, sources, rng)
        steps.append(result.steps)
        icp.append(result.stage_steps["icp"])
    return float(np.mean(steps)), float(np.mean(icp))


def run_experiment(rng) -> TextTable:
    table = TextTable(
        ["graph", "|S|", "total steps", "icp steps", "icp vs |S|=1"],
        title=(
            "E12: packet Compete(S) vs source count "
            "(claim: mild growth — the |S| D^0.125 term)"
        ),
    )
    instances = {
        "grid 3x20": graphs.grid_udg(3, 20, rng),
        "udg(80)": graphs.random_udg(80, 4.5, rng),
    }
    for name, g in instances.items():
        n = g.number_of_nodes()
        baseline_icp = None
        for k in (1, 2, 4, 8, 16):
            nodes = rng.choice(n, size=k, replace=False)
            sources = {int(v): int(100 + i) for i, v in enumerate(nodes)}
            total, icp = _mean_steps(g, sources, rng)
            if baseline_icp is None:
                baseline_icp = max(1.0, icp)
            table.add_row([name, k, total, icp, icp / baseline_icp])
    return table


def test_e12_multisource(benchmark, results_dir):
    rng = np.random.default_rng(15001)
    g = graphs.grid_udg(3, 15, rng)

    benchmark.pedantic(
        lambda: compete_packet(
            RadioNetwork(g), {0: 1, 10: 2, 20: 3}, np.random.default_rng(5)
        ),
        rounds=3,
        iterations=1,
    )
    table = run_experiment(np.random.default_rng(15002))
    save_table(results_dir, "e12_multisource", table.render())
