"""E11 — the MIS lower bound's engine: single-hop wake-up.

The paper's only MIS lower bound (Omega(log^2 n), [14]) transfers from
the wake-up problem by simulation (Section 1.5.1, footnote 3). This
experiment plays the wake-up game directly:

* the Decay ladder succeeds for *every* unknown k with steps growing
  ~log n per confidence level — the upper-bound side of the story;
* a fixed-probability strategy is fast only at its tuned k and
  collapses away from it — why density sweeps are unavoidable;
* actual Radio MIS, run on a k-clique while believing the network has
  n nodes (the reduction's setup), produces its first successful
  transmission within the same O(log^2 n) envelope — making the
  reduction concrete.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import TextTable
from repro.core import (
    decay_schedule,
    expected_steps,
    mis_as_wakeup_strategy,
    uniform_schedule,
)

from conftest import save_table

N = 256


def run_strategies(rng) -> TextTable:
    table = TextTable(
        ["k", "decay", "uniform p=1/16", "uniform p=1/k (tuned)"],
        title=(
            "E11a: expected steps to first successful transmission "
            f"(n={N}; claim: decay uniform over k, fixed p collapses "
            "off its tuned density)"
        ),
    )
    for k in (2, 8, 16, 64, 256):
        decay = expected_steps(k, decay_schedule(N), rng, trials=30)
        fixed = expected_steps(
            k, uniform_schedule(1.0 / 16), rng, trials=30, max_steps=3000
        )
        tuned = expected_steps(k, uniform_schedule(1.0 / k), rng, trials=30)
        table.add_row([k, decay, fixed, tuned])
    return table


def run_mis_reduction(rng) -> TextTable:
    table = TextTable(
        ["n", "k", "mean steps", "log^2 n", "steps/log^2 n"],
        title=(
            "E11b: Radio MIS as a wake-up strategy (the paper's "
            "reduction; claim: first success within O(log^2 n) steps)"
        ),
    )
    for n in (64, 256, 1024):
        for k in (4, 32):
            steps = [
                mis_as_wakeup_strategy(n, k, rng).steps for _ in range(10)
            ]
            mean = float(np.mean(steps))
            log2n2 = math.log2(n) ** 2
            table.add_row([n, k, mean, log2n2, mean / log2n2])
    return table


def test_e11_wakeup_strategies(benchmark, results_dir):
    rng = np.random.default_rng(14001)

    benchmark.pedantic(
        lambda: expected_steps(
            64, decay_schedule(N), np.random.default_rng(5), trials=10
        ),
        rounds=3,
        iterations=1,
    )
    table = run_strategies(np.random.default_rng(14002))
    save_table(results_dir, "e11a_wakeup_strategies", table.render())


def test_e11_mis_reduction(benchmark, results_dir):
    rng = np.random.default_rng(14003)

    benchmark.pedantic(
        lambda: mis_as_wakeup_strategy(256, 16, np.random.default_rng(5)),
        rounds=3,
        iterations=1,
    )
    table = run_mis_reduction(np.random.default_rng(14004))
    save_table(results_dir, "e11b_mis_reduction", table.render())
